//! The physical crossbar array and matrix programming.
//!
//! Two levels of fidelity are exposed (DESIGN.md §6, ablation 5):
//!
//! * [`program_matrix`] — the *effective-weight fast path*. It samples one
//!   CRW per weight and returns a real-valued matrix; downstream VMMs are
//!   ordinary matrix products. Because Kirchhoff summation is linear and an
//!   ideal ADC preserves it, this is exact for accuracy experiments.
//! * [`Crossbar`] — a cell-level array holding per-cell levels and noisy
//!   conductances, supporting partial-wordline analog VMMs for the
//!   bit-serial ADC pipeline in [`crate::adc`].

use std::cell::RefCell;

use rand::{Rng, RngCore};
use rand_distr::{Distribution, Normal};
use rdo_tensor::{microkernel, ColumnPlanes, Scratch, Tensor};
use serde::{Deserialize, Serialize};

use crate::codec::WeightCodec;
use crate::device_model::DeviceModel;
use crate::error::{Result, RramError};
use crate::variation::{VariationKind, VariationModel};

thread_local! {
    /// Per-thread buffer pool for the bulk programming θ streams, so the
    /// per-cycle hot loop stops allocating after warm-up.
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

/// Physical dimensions of one crossbar array (the paper simulates
/// 128×128).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CrossbarSpec {
    /// Number of wordlines (rows).
    pub rows: usize,
    /// Number of bitlines (cell columns).
    pub cols: usize,
}

impl Default for CrossbarSpec {
    fn default() -> Self {
        CrossbarSpec { rows: 128, cols: 128 }
    }
}

impl CrossbarSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "crossbar dimensions must be positive");
        CrossbarSpec { rows, cols }
    }

    /// How many *weights* fit along the bitline axis for the given codec
    /// (each weight consumes `cells_per_weight` adjacent bitlines).
    pub fn weight_cols(&self, codec: &WeightCodec) -> usize {
        self.cols / codec.cells_per_weight()
    }
}

/// Validates and rounds every CTW entry to its integer level, up front,
/// so the bulk sampling loops below can be panic-free and branch-light.
pub(crate) fn validate_levels(ctw: &Tensor, codec: &WeightCodec) -> Result<Vec<u32>> {
    if ctw.shape().rank() != 2 {
        return Err(RramError::ShapeMismatch(format!(
            "CTW matrix must be rank 2, got {:?}",
            ctw.dims()
        )));
    }
    let mut levels = Vec::with_capacity(ctw.data().len());
    for &q in ctw.data() {
        let v = q.round();
        if v < 0.0 || v > codec.max_weight() as f32 {
            return Err(RramError::WeightOutOfRange {
                value: v.max(0.0) as u32,
                levels: codec.weight_levels(),
            });
        }
        levels.push(v as u32);
    }
    Ok(levels)
}

/// The level → total nominal conductance table (`v + floor` in weight
/// units), one entry per representable level.
fn nominal_table(codec: &WeightCodec) -> Result<Vec<f64>> {
    (0..codec.weight_levels()).map(|v| codec.nominal_conductance(v)).collect()
}

/// Per-level, per-slice contributions `place(j)·(s_j + cell_floor)` plus
/// their ascending-`j` sums — the precomputed halves of the per-cell
/// write formula. The sums are accumulated in the same order the scalar
/// path adds its terms, so the σ = 0 shortcut stays bitwise identical.
fn per_cell_tables(codec: &WeightCodec) -> Result<(Vec<f64>, Vec<f64>, usize)> {
    let cpw = codec.cells_per_weight();
    let cell_floor = codec.cell().floor();
    let levels = codec.weight_levels() as usize;
    let mut contrib = Vec::with_capacity(levels * cpw);
    let mut sums = Vec::with_capacity(levels);
    let mut slices = vec![0u32; cpw];
    for v in 0..levels {
        codec.encode_into(v as u32, &mut slices)?;
        let mut sum = 0.0f64;
        for (j, &s) in slices.iter().enumerate() {
            let c = codec.place_value(j) as f64 * (s as f64 + cell_floor);
            contrib.push(c);
            sum += c;
        }
        sums.push(sum);
    }
    Ok((contrib, sums, cpw))
}

/// Samples CRWs for a whole integer weight matrix: the fast path.
///
/// `ctw` holds integer levels (as whole-valued `f32`) of shape
/// `(fan_in, fan_out)`; the result has the same shape with one sampled
/// crossbar real weight per entry.
///
/// This is the bulk path of the per-cycle hot loop: entries are
/// validated up front, the `Normal(0, σ)` distribution is hoisted out of
/// the loop (it is a pure parameter struct, so this leaves the RNG
/// stream untouched), the θ stream is sampled into a pooled scratch
/// buffer in exactly the per-entry order of the scalar path, and the
/// precomputed level → conductance table is applied in one fused pass —
/// making the result **bitwise identical** to [`program_matrix_scalar`]
/// at any seed (property-tested). The paths only differ on invalid
/// input, where the bulk path errors before consuming any RNG draws.
///
/// # Errors
///
/// Returns [`RramError::WeightOutOfRange`] if any entry does not fit the
/// codec, or [`RramError::ShapeMismatch`] for a non-matrix tensor.
pub fn program_matrix(
    ctw: &Tensor,
    codec: &WeightCodec,
    model: &VariationModel,
    rng: &mut impl Rng,
) -> Result<Tensor> {
    let levels = validate_levels(ctw, codec)?;
    let floor = codec.total_floor();
    let sigma = model.sigma();
    if rdo_obs::enabled() {
        rdo_obs::counter_add("rram.program.calls", 1);
        rdo_obs::counter_add("rram.program.weights", levels.len() as u64);
        let draws = match (sigma == 0.0, model.kind()) {
            (true, _) => 0,
            (false, VariationKind::PerWeight) => levels.len(),
            (false, VariationKind::PerCell) => levels.len() * codec.cells_per_weight(),
        };
        rdo_obs::counter_add("rram.theta.samples", draws as u64);
    }
    let mut out = Tensor::zeros(ctw.dims());
    match model.kind() {
        VariationKind::PerWeight => {
            let nominal = nominal_table(codec)?;
            if sigma == 0.0 {
                // the scalar path multiplies by an undrawn 1.0 here;
                // x·1.0 ≡ x bitwise, so skipping it is exact
                for (o, &v) in out.data_mut().iter_mut().zip(&levels) {
                    *o = (nominal[v as usize] - floor) as f32;
                }
            } else {
                let normal = Normal::new(0.0, sigma).expect("sigma validated at construction");
                SCRATCH.with(|s| {
                    let mut scratch = s.borrow_mut();
                    let mut theta = scratch.take_f64(levels.len());
                    for t in theta.iter_mut() {
                        *t = normal.sample(rng);
                    }
                    for ((o, &v), t) in out.data_mut().iter_mut().zip(&levels).zip(&theta) {
                        *o = (nominal[v as usize] * t.exp() - floor) as f32;
                    }
                    scratch.recycle_f64(theta);
                });
            }
        }
        VariationKind::PerCell => {
            let (contrib, sums, cpw) = per_cell_tables(codec)?;
            if sigma == 0.0 {
                for (o, &v) in out.data_mut().iter_mut().zip(&levels) {
                    *o = (sums[v as usize] - floor) as f32;
                }
            } else {
                let normal = Normal::new(0.0, sigma).expect("sigma validated at construction");
                SCRATCH.with(|s| {
                    let mut scratch = s.borrow_mut();
                    let mut theta = scratch.take_f64(levels.len() * cpw);
                    for t in theta.iter_mut() {
                        *t = normal.sample(rng);
                    }
                    for (i, (o, &v)) in out.data_mut().iter_mut().zip(&levels).enumerate() {
                        let row = &contrib[v as usize * cpw..(v as usize + 1) * cpw];
                        let th = &theta[i * cpw..(i + 1) * cpw];
                        let mut total = 0.0f64;
                        for (c, t) in row.iter().zip(th) {
                            total += c * t.exp();
                        }
                        *o = (total - floor) as f32;
                    }
                    scratch.recycle_f64(theta);
                });
            }
        }
    }
    Ok(out)
}

/// The per-entry reference implementation of [`program_matrix`], kept as
/// the bitwise oracle for the bulk path (and for
/// `BENCH_program.json` / `--bench program`, which quantify the gap).
///
/// # Errors
///
/// Same contract as [`program_matrix`].
pub fn program_matrix_scalar(
    ctw: &Tensor,
    codec: &WeightCodec,
    model: &VariationModel,
    rng: &mut impl Rng,
) -> Result<Tensor> {
    if ctw.shape().rank() != 2 {
        return Err(RramError::ShapeMismatch(format!(
            "CTW matrix must be rank 2, got {:?}",
            ctw.dims()
        )));
    }
    let mut out = Tensor::zeros(ctw.dims());
    for (o, &q) in out.data_mut().iter_mut().zip(ctw.data()) {
        let v = q.round();
        if v < 0.0 || v > codec.max_weight() as f32 {
            return Err(RramError::WeightOutOfRange {
                value: v.max(0.0) as u32,
                levels: codec.weight_levels(),
            });
        }
        *o = model.write(v as u32, codec, rng)? as f32;
    }
    Ok(out)
}

/// Samples per-weight device-to-device factors (`e^{θ_d}`, fixed across
/// programming cycles) for a matrix of the given shape.
pub fn sample_ddv_factors(dims: &[usize], ddv: &VariationModel, rng: &mut impl Rng) -> Tensor {
    use rand_distr::{Distribution, Normal};
    if ddv.sigma() == 0.0 {
        return Tensor::ones(dims);
    }
    let normal = Normal::new(0.0, ddv.sigma()).expect("sigma validated at construction");
    Tensor::from_fn(dims, |_| normal.sample(rng).exp() as f32)
}

/// Like [`program_matrix`], but composes a fixed per-device DDV factor
/// with a fresh cycle-to-cycle factor:
/// `CRW = (v + F)·d·e^{θ_c} − F`, where `d` comes from
/// [`sample_ddv_factors`] (held constant across calls) and `θ_c` is drawn
/// fresh on every call.
///
/// With an all-ones `ddv` matrix this is exactly [`program_matrix`] for
/// the per-weight model.
///
/// # Errors
///
/// Returns [`RramError::ShapeMismatch`] if the factor matrix does not
/// match `ctw`, or [`RramError::WeightOutOfRange`] for unrepresentable
/// weights.
pub fn program_matrix_with_ddv(
    ctw: &Tensor,
    codec: &WeightCodec,
    ddv_factors: &Tensor,
    ccv: &VariationModel,
    rng: &mut impl Rng,
) -> Result<Tensor> {
    if ctw.shape().rank() != 2 || ddv_factors.dims() != ctw.dims() {
        return Err(RramError::ShapeMismatch(format!(
            "CTW {:?} vs DDV factors {:?}",
            ctw.dims(),
            ddv_factors.dims()
        )));
    }
    let levels = validate_levels(ctw, codec)?;
    let floor = codec.total_floor();
    let nominal = nominal_table(codec)?;
    let sigma = ccv.sigma();
    if rdo_obs::enabled() {
        rdo_obs::counter_add("rram.program.calls", 1);
        rdo_obs::counter_add("rram.program.weights", levels.len() as u64);
        let draws = if sigma == 0.0 { 0 } else { levels.len() };
        rdo_obs::counter_add("rram.theta.samples", draws as u64);
    }
    let mut out = Tensor::zeros(ctw.dims());
    if sigma == 0.0 {
        for ((o, &v), &d) in out.data_mut().iter_mut().zip(&levels).zip(ddv_factors.data()) {
            *o = (nominal[v as usize] * d as f64 - floor) as f32;
        }
    } else {
        // one CCV draw per weight regardless of the model's kind — the
        // same contract as the scalar path's `sample_factor`
        let normal = Normal::new(0.0, sigma).expect("sigma validated at construction");
        SCRATCH.with(|s| {
            let mut scratch = s.borrow_mut();
            let mut theta = scratch.take_f64(levels.len());
            for t in theta.iter_mut() {
                *t = normal.sample(rng);
            }
            for (((o, &v), &d), t) in
                out.data_mut().iter_mut().zip(&levels).zip(ddv_factors.data()).zip(&theta)
            {
                // write the nominal conductance through both factors,
                // calibrate the floor out afterwards (same convention as
                // VariationModel)
                *o = (nominal[v as usize] * d as f64 * t.exp() - floor) as f32;
            }
            scratch.recycle_f64(theta);
        });
    }
    Ok(out)
}

/// The per-entry reference implementation of [`program_matrix_with_ddv`]
/// (bitwise oracle for the bulk path, same contract).
///
/// # Errors
///
/// Same contract as [`program_matrix_with_ddv`].
pub fn program_matrix_with_ddv_scalar(
    ctw: &Tensor,
    codec: &WeightCodec,
    ddv_factors: &Tensor,
    ccv: &VariationModel,
    rng: &mut impl Rng,
) -> Result<Tensor> {
    if ctw.shape().rank() != 2 || ddv_factors.dims() != ctw.dims() {
        return Err(RramError::ShapeMismatch(format!(
            "CTW {:?} vs DDV factors {:?}",
            ctw.dims(),
            ddv_factors.dims()
        )));
    }
    let floor = codec.total_floor();
    let mut out = Tensor::zeros(ctw.dims());
    for ((o, &q), &d) in out.data_mut().iter_mut().zip(ctw.data()).zip(ddv_factors.data()) {
        let v = q.round();
        if v < 0.0 || v > codec.max_weight() as f32 {
            return Err(RramError::WeightOutOfRange {
                value: v.max(0.0) as u32,
                levels: codec.weight_levels(),
            });
        }
        let nominal = codec.nominal_conductance(v as u32)?;
        *o = (nominal * d as f64 * ccv.sample_factor(rng) - floor) as f32;
    }
    Ok(out)
}

/// A cell-level crossbar array: programmed levels plus realized (noisy)
/// conductances, in step units including the HRS floor.
#[derive(Debug, Clone, PartialEq)]
pub struct Crossbar {
    spec: CrossbarSpec,
    codec: WeightCodec,
    /// Programmed level per cell, row-major `(rows, cols)`.
    levels: Vec<u32>,
    /// Realized conductance per cell (after variation), same layout.
    conductance: Vec<f64>,
    /// Number of weight columns actually in use.
    used_weight_cols: usize,
    /// Number of rows actually in use.
    used_rows: usize,
    /// The used sub-array's levels packed as per-column cell-bit planes,
    /// built once at programming time for the integer bit-serial readout.
    planes: ColumnPlanes,
}

/// Packs the used `(used_rows × used cell columns)` sub-array of a full
/// `levels` buffer into the per-column plane layout the bit-plane
/// popcount readout consumes.
fn pack_used_planes(
    levels: &[u32],
    spec: CrossbarSpec,
    codec: &WeightCodec,
    used_rows: usize,
    used_weight_cols: usize,
) -> Result<ColumnPlanes> {
    let cell_cols = used_weight_cols * codec.cells_per_weight();
    let mut lv = Vec::with_capacity(used_rows * cell_cols);
    for r in 0..used_rows {
        lv.extend_from_slice(&levels[r * spec.cols..r * spec.cols + cell_cols]);
    }
    Ok(ColumnPlanes::pack(&lv, used_rows, cell_cols, codec.cell().kind().bits())?)
}

impl Crossbar {
    /// Programs a block of integer weights into a fresh crossbar.
    ///
    /// `ctw_block` is `(rows_used, weight_cols_used)` with
    /// `rows_used ≤ spec.rows` and
    /// `weight_cols_used ≤ spec.weight_cols(codec)`. Unused cells stay in
    /// HRS.
    ///
    /// For [`VariationKind::PerWeight`], all cells of one weight share the
    /// same lognormal factor; for [`VariationKind::PerCell`] each cell
    /// draws its own.
    ///
    /// # Errors
    ///
    /// Returns [`RramError::ShapeMismatch`] if the block exceeds the array
    /// or [`RramError::WeightOutOfRange`] for unrepresentable weights.
    pub fn program(
        spec: CrossbarSpec,
        codec: WeightCodec,
        ctw_block: &Tensor,
        model: &VariationModel,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        if ctw_block.shape().rank() != 2 {
            return Err(RramError::ShapeMismatch("CTW block must be rank 2".to_string()));
        }
        let (used_rows, used_weight_cols) = (ctw_block.dims()[0], ctw_block.dims()[1]);
        let cpw = codec.cells_per_weight();
        if used_rows > spec.rows || used_weight_cols * cpw > spec.cols {
            return Err(RramError::ShapeMismatch(format!(
                "block {used_rows}×{used_weight_cols} weights exceeds {}×{} array",
                spec.rows,
                spec.weight_cols(&codec)
            )));
        }
        if rdo_obs::enabled() {
            rdo_obs::counter_add("rram.crossbar.program.calls", 1);
            rdo_obs::counter_add(
                "rram.crossbar.program.cells",
                (used_rows * used_weight_cols * cpw) as u64,
            );
        }
        let cell_floor = codec.cell().floor();
        let mut levels = vec![0u32; spec.rows * spec.cols];
        let mut conductance = vec![cell_floor; spec.rows * spec.cols];
        // one slice buffer for the whole array (encode_into is
        // allocation-free, one call per weight)
        let mut slices = vec![0u32; cpw];
        for r in 0..used_rows {
            for wc in 0..used_weight_cols {
                let q = ctw_block.at(&[r, wc])?.round();
                if q < 0.0 || q > codec.max_weight() as f32 {
                    return Err(RramError::WeightOutOfRange {
                        value: q.max(0.0) as u32,
                        levels: codec.weight_levels(),
                    });
                }
                codec.encode_into(q as u32, &mut slices)?;
                // one shared factor for PerWeight, fresh per cell otherwise
                let shared = sample_lognormal(model, rng);
                for (j, &s) in slices.iter().enumerate() {
                    let idx = r * spec.cols + wc * cpw + j;
                    levels[idx] = s;
                    let factor = match model.kind() {
                        VariationKind::PerWeight => shared,
                        VariationKind::PerCell => sample_lognormal(model, rng),
                    };
                    conductance[idx] = (s as f64 + cell_floor) * factor;
                }
            }
        }
        let planes = pack_used_planes(&levels, spec, &codec, used_rows, used_weight_cols)?;
        Ok(Crossbar { spec, codec, levels, conductance, used_weight_cols, used_rows, planes })
    }

    /// [`Crossbar::program`] under any [`DeviceModel`]: each weight's
    /// cells are realized by [`DeviceModel::write_cells`], weight by
    /// weight in row-major order. For the paper model this reproduces
    /// [`Crossbar::program`] bit for bit (same draw order); models
    /// without a cell-level form (the differential pair) error.
    ///
    /// # Errors
    ///
    /// Same as [`Crossbar::program`], plus [`RramError::InvalidGeometry`]
    /// for models that decline cell-level programming.
    pub fn program_model(
        spec: CrossbarSpec,
        codec: WeightCodec,
        ctw_block: &Tensor,
        model: &dyn DeviceModel,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        if ctw_block.shape().rank() != 2 {
            return Err(RramError::ShapeMismatch("CTW block must be rank 2".to_string()));
        }
        let (used_rows, used_weight_cols) = (ctw_block.dims()[0], ctw_block.dims()[1]);
        let cpw = codec.cells_per_weight();
        if used_rows > spec.rows || used_weight_cols * cpw > spec.cols {
            return Err(RramError::ShapeMismatch(format!(
                "block {used_rows}×{used_weight_cols} weights exceeds {}×{} array",
                spec.rows,
                spec.weight_cols(&codec)
            )));
        }
        if rdo_obs::enabled() {
            rdo_obs::counter_add("rram.crossbar.program.calls", 1);
            rdo_obs::counter_add(
                "rram.crossbar.program.cells",
                (used_rows * used_weight_cols * cpw) as u64,
            );
        }
        let cell_floor = codec.cell().floor();
        let mut levels = vec![0u32; spec.rows * spec.cols];
        let mut conductance = vec![cell_floor; spec.rows * spec.cols];
        let rng: &mut dyn RngCore = rng;
        // one slice buffer for the whole array (encode_into is
        // allocation-free, one call per weight)
        let mut slices = vec![0u32; cpw];
        for r in 0..used_rows {
            for wc in 0..used_weight_cols {
                let q = ctw_block.at(&[r, wc])?.round();
                if q < 0.0 || q > codec.max_weight() as f32 {
                    return Err(RramError::WeightOutOfRange {
                        value: q.max(0.0) as u32,
                        levels: codec.weight_levels(),
                    });
                }
                codec.encode_into(q as u32, &mut slices)?;
                let cells = model.write_cells(&slices, &codec, &mut *rng)?;
                let base = r * spec.cols + wc * cpw;
                for (j, (&s, g)) in slices.iter().zip(cells).enumerate() {
                    levels[base + j] = s;
                    conductance[base + j] = g;
                }
            }
        }
        let planes = pack_used_planes(&levels, spec, &codec, used_rows, used_weight_cols)?;
        Ok(Crossbar { spec, codec, levels, conductance, used_weight_cols, used_rows, planes })
    }

    /// The array dimensions.
    pub fn spec(&self) -> CrossbarSpec {
        self.spec
    }

    /// The weight codec the array was programmed with.
    pub fn codec(&self) -> &WeightCodec {
        &self.codec
    }

    /// Rows in use.
    pub fn used_rows(&self) -> usize {
        self.used_rows
    }

    /// Weight columns in use.
    pub fn used_weight_cols(&self) -> usize {
        self.used_weight_cols
    }

    /// Programmed level of the cell at `(row, cell_col)`.
    pub fn level(&self, row: usize, cell_col: usize) -> u32 {
        self.levels[row * self.spec.cols + cell_col]
    }

    /// All programmed cell levels, row-major over the full `rows × cols`
    /// physical array (unused cells are 0). The integer bit-serial pipeline
    /// packs these into column bit-planes.
    pub fn levels(&self) -> &[u32] {
        &self.levels
    }

    /// The used sub-array's programmed levels packed as per-column
    /// cell-bit planes (`used_rows` rows × used cell columns), built once
    /// at programming time so the integer bit-serial readout
    /// ([`crate::BitSerialEvaluator::evaluate_qint`]) pays no per-call
    /// packing cost.
    pub fn column_planes(&self) -> &ColumnPlanes {
        &self.planes
    }

    /// Realized conductance of the cell at `(row, cell_col)` in step units.
    pub fn cell_conductance(&self, row: usize, cell_col: usize) -> f64 {
        self.conductance[row * self.spec.cols + cell_col]
    }

    /// The calibrated crossbar real weight at `(row, weight_col)`: the
    /// place-value-weighted sum of its cells' conductances minus the
    /// nominal floor. This is what a post-writing test measures.
    pub fn crw(&self, row: usize, weight_col: usize) -> f64 {
        let cpw = self.codec.cells_per_weight();
        let mut total = 0.0;
        for j in 0..cpw {
            total +=
                self.codec.place_value(j) as f64 * self.cell_conductance(row, weight_col * cpw + j);
        }
        total - self.codec.total_floor()
    }

    /// All CRWs of the used block as a `(used_rows, used_weight_cols)`
    /// tensor — the measurement step that precedes PWT.
    pub fn crw_matrix(&self) -> Tensor {
        Tensor::from_fn(&[self.used_rows, self.used_weight_cols], |i| {
            let (r, c) = (i / self.used_weight_cols, i % self.used_weight_cols);
            self.crw(r, c) as f32
        })
    }

    /// Analog partial VMM: bitline currents when wordlines
    /// `[row_start, row_end)` are driven with voltages `x` and all other
    /// wordlines are off. Returns one current per *cell column*, in
    /// step-unit conductance times input units (the floor is **not**
    /// subtracted — that calibration happens digitally downstream).
    ///
    /// # Errors
    ///
    /// Returns [`RramError::ShapeMismatch`] if the input length does not
    /// equal the active row count or the range is invalid.
    pub fn bitline_currents(
        &self,
        x: &[f32],
        row_start: usize,
        row_end: usize,
    ) -> Result<Vec<f64>> {
        let mut currents = vec![0.0f64; self.spec.cols];
        self.bitline_currents_into(x, row_start, row_end, &mut currents)?;
        Ok(currents)
    }

    /// [`bitline_currents`](Self::bitline_currents) into a caller-owned
    /// buffer, **accumulating** onto whatever is already there — pass a
    /// zeroed buffer for plain currents. This is the allocation-free entry
    /// the bit-serial ADC uses once per wordline group per input bit.
    ///
    /// # Errors
    ///
    /// Returns [`RramError::ShapeMismatch`] if the input length does not
    /// equal the active row count, the range is invalid, or `out` is not
    /// one element per cell column.
    pub fn bitline_currents_into(
        &self,
        x: &[f32],
        row_start: usize,
        row_end: usize,
        out: &mut [f64],
    ) -> Result<()> {
        if row_start > row_end || row_end > self.spec.rows || x.len() != row_end - row_start {
            return Err(RramError::ShapeMismatch(format!(
                "active rows {row_start}..{row_end} with {} inputs",
                x.len()
            )));
        }
        if out.len() != self.spec.cols {
            return Err(RramError::ShapeMismatch(format!(
                "bitline buffer holds {} columns, crossbar has {}",
                out.len(),
                self.spec.cols
            )));
        }
        let cols = self.spec.cols;
        let block = &self.conductance[row_start * cols..row_end * cols];
        microkernel::gevm_into_f64(x, block, out, x.len(), cols);
        Ok(())
    }

    /// Total relative read power of the used block: the sum of nominal
    /// cell conductances over all used cells (power ∝ conductance at a
    /// fixed read voltage). Used by the Table I reading-power study.
    pub fn read_power(&self) -> f64 {
        let cpw = self.codec.cells_per_weight();
        let cell_floor = self.codec.cell().floor();
        let mut total = 0.0;
        for r in 0..self.used_rows {
            for c in 0..self.used_weight_cols * cpw {
                total += self.levels[r * self.spec.cols + c] as f64 + cell_floor;
            }
        }
        total
    }
}

fn sample_lognormal(model: &VariationModel, rng: &mut impl Rng) -> f64 {
    use rand_distr::{Distribution, Normal};
    if model.sigma() == 0.0 {
        return 1.0;
    }
    Normal::new(0.0, model.sigma()).expect("sigma validated at construction").sample(rng).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{CellKind, CellTechnology};
    use rdo_tensor::rng::seeded_rng;

    fn codec() -> WeightCodec {
        WeightCodec::paper(CellTechnology::paper(CellKind::Slc))
    }

    #[test]
    fn program_model_paper_is_bitwise_program() {
        use crate::device_model::{DeviceModelSpec, LevelLognormalModel, PaperLognormalModel};
        let spec = CrossbarSpec::new(8, 32);
        let ctw = Tensor::from_fn(&[5, 3], |i| ((i * 53 + 11) % 256) as f32);
        for kind in [VariationKind::PerWeight, VariationKind::PerCell] {
            for sigma in [0.0, 0.6] {
                let variation = VariationModel::new(sigma, kind);
                let legacy =
                    Crossbar::program(spec, codec(), &ctw, &variation, &mut seeded_rng(31))
                        .unwrap();
                let model = PaperLognormalModel::new(variation);
                let via_trait =
                    Crossbar::program_model(spec, codec(), &ctw, &model, &mut seeded_rng(31))
                        .unwrap();
                assert_eq!(via_trait, legacy, "{kind:?} σ={sigma}");
            }
        }
        // zoo members run through the same entry…
        let level = LevelLognormalModel::new(0.2, 0.4, 0.01);
        let xb = Crossbar::program_model(spec, codec(), &ctw, &level, &mut seeded_rng(31)).unwrap();
        assert_eq!(xb.used_rows(), 5);
        // …except models without a cell-level form
        let diff = DeviceModelSpec::DiffPair { base: crate::device_model::DiffBase::Paper };
        assert!(Crossbar::program_model(
            spec,
            codec(),
            &ctw,
            &*diff.build(0.5),
            &mut seeded_rng(31)
        )
        .is_err());
    }

    #[test]
    fn program_matrix_zero_sigma_is_exact() {
        let ctw = Tensor::from_vec(vec![0.0, 17.0, 255.0, 128.0], &[2, 2]).unwrap();
        let crw =
            program_matrix(&ctw, &codec(), &VariationModel::per_weight(0.0), &mut seeded_rng(0))
                .unwrap();
        for (a, b) in ctw.data().iter().zip(crw.data()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn program_matrix_rejects_out_of_range() {
        let ctw = Tensor::from_vec(vec![256.0], &[1, 1]).unwrap();
        assert!(program_matrix(
            &ctw,
            &codec(),
            &VariationModel::per_weight(0.1),
            &mut seeded_rng(0)
        )
        .is_err());
        let neg = Tensor::from_vec(vec![-1.0], &[1, 1]).unwrap();
        assert!(program_matrix(
            &neg,
            &codec(),
            &VariationModel::per_weight(0.1),
            &mut seeded_rng(0)
        )
        .is_err());
        // the scalar reference enforces the same contract
        assert!(program_matrix_scalar(
            &neg,
            &codec(),
            &VariationModel::per_weight(0.1),
            &mut seeded_rng(0)
        )
        .is_err());
    }

    /// Fixed-case twin of the `bulk_program_matches_scalar` proptest:
    /// the bulk path must reproduce the scalar path bit for bit.
    #[test]
    fn bulk_matches_scalar_fixed_cases() {
        for cell in [CellKind::Slc, CellKind::Mlc2] {
            let c = WeightCodec::paper(CellTechnology::paper(cell));
            for kind in [VariationKind::PerWeight, VariationKind::PerCell] {
                for sigma in [0.0, 0.3, 0.8] {
                    let model = VariationModel::new(sigma, kind);
                    let ctw = Tensor::from_fn(&[17, 9], |i| ((i * 41 + 3) % 256) as f32);
                    let bulk = program_matrix(&ctw, &c, &model, &mut seeded_rng(11)).unwrap();
                    let scalar =
                        program_matrix_scalar(&ctw, &c, &model, &mut seeded_rng(11)).unwrap();
                    for (i, (a, b)) in bulk.data().iter().zip(scalar.data()).enumerate() {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "{cell:?}/{kind:?} σ={sigma} entry {i}: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    /// Fixed-case twin of the `bulk_ddv_program_matches_scalar` proptest.
    #[test]
    fn bulk_ddv_matches_scalar_fixed_cases() {
        for cell in [CellKind::Slc, CellKind::Mlc2] {
            let c = WeightCodec::paper(CellTechnology::paper(cell));
            for (ddv_sigma, ccv_sigma) in [(0.0, 0.5), (0.3, 0.0), (0.35, 0.35)] {
                let ctw = Tensor::from_fn(&[13, 7], |i| ((i * 29 + 5) % 256) as f32);
                let ddv = VariationModel::per_weight(ddv_sigma);
                let ccv = VariationModel::per_weight(ccv_sigma);
                let factors = sample_ddv_factors(ctw.dims(), &ddv, &mut seeded_rng(21));
                let bulk =
                    program_matrix_with_ddv(&ctw, &c, &factors, &ccv, &mut seeded_rng(22)).unwrap();
                let scalar =
                    program_matrix_with_ddv_scalar(&ctw, &c, &factors, &ccv, &mut seeded_rng(22))
                        .unwrap();
                for (i, (a, b)) in bulk.data().iter().zip(scalar.data()).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{cell:?} ddv={ddv_sigma} ccv={ccv_sigma} entry {i}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn cell_array_crw_matches_fast_path_statistics() {
        // the detailed array's CRW must be distributed like the fast path
        let c = codec();
        let model = VariationModel::per_weight(0.3);
        let mut rng = seeded_rng(1);
        let ctw = Tensor::full(&[64, 4], 100.0);
        let mut crws = Vec::new();
        for _ in 0..40 {
            let xb = Crossbar::program(CrossbarSpec::default(), c, &ctw, &model, &mut rng).unwrap();
            let m = xb.crw_matrix();
            crws.extend(m.data().iter().map(|&v| v as f64));
        }
        let n = crws.len() as f64;
        let mean = crws.iter().sum::<f64>() / n;
        let (am, _) = model.moments(100, &c).unwrap();
        assert!((mean - am).abs() / am < 0.02, "{mean} vs {am}");
    }

    #[test]
    fn crw_matrix_zero_sigma_recovers_ctw() {
        let c = codec();
        let ctw = Tensor::from_fn(&[8, 3], |i| ((i * 37) % 256) as f32);
        let xb = Crossbar::program(
            CrossbarSpec::default(),
            c,
            &ctw,
            &VariationModel::per_weight(0.0),
            &mut seeded_rng(2),
        )
        .unwrap();
        let m = xb.crw_matrix();
        for (a, b) in ctw.data().iter().zip(m.data()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn bitline_currents_linear_in_inputs() {
        let c = codec();
        let ctw = Tensor::from_fn(&[4, 2], |i| (i * 31 % 256) as f32);
        let xb = Crossbar::program(
            CrossbarSpec::default(),
            c,
            &ctw,
            &VariationModel::per_weight(0.2),
            &mut seeded_rng(3),
        )
        .unwrap();
        let x1 = [1.0f32, 0.0, 2.0, 0.5];
        let x2 = [0.5f32, 1.5, 0.0, 1.0];
        let i1 = xb.bitline_currents(&x1, 0, 4).unwrap();
        let i2 = xb.bitline_currents(&x2, 0, 4).unwrap();
        let sum: Vec<f32> = x1.iter().zip(&x2).map(|(a, b)| a + b).collect();
        let i12 = xb.bitline_currents(&sum, 0, 4).unwrap();
        for k in 0..i12.len() {
            assert!((i12[k] - (i1[k] + i2[k])).abs() < 1e-6);
        }
    }

    #[test]
    fn partial_activation_covers_rows_in_pieces() {
        let c = codec();
        let ctw = Tensor::from_fn(&[8, 2], |i| (i * 13 % 256) as f32);
        let xb = Crossbar::program(
            CrossbarSpec::default(),
            c,
            &ctw,
            &VariationModel::per_weight(0.4),
            &mut seeded_rng(4),
        )
        .unwrap();
        let x: Vec<f32> = (0..8).map(|i| i as f32 * 0.25).collect();
        let full = xb.bitline_currents(&x, 0, 8).unwrap();
        let a = xb.bitline_currents(&x[0..4], 0, 4).unwrap();
        let b = xb.bitline_currents(&x[4..8], 4, 8).unwrap();
        for k in 0..full.len() {
            assert!((full[k] - (a[k] + b[k])).abs() < 1e-6);
        }
    }

    #[test]
    fn oversized_block_rejected() {
        let c = codec();
        let spec = CrossbarSpec::new(4, 16); // 2 weight columns for SLC-8
        let ctw = Tensor::zeros(&[4, 3]);
        assert!(Crossbar::program(
            spec,
            c,
            &ctw,
            &VariationModel::per_weight(0.1),
            &mut seeded_rng(0)
        )
        .is_err());
        let tall = Tensor::zeros(&[5, 2]);
        assert!(Crossbar::program(
            spec,
            c,
            &tall,
            &VariationModel::per_weight(0.1),
            &mut seeded_rng(0)
        )
        .is_err());
    }

    #[test]
    fn read_power_higher_for_large_weights() {
        let c = codec();
        let model = VariationModel::per_weight(0.0);
        let low = Crossbar::program(
            CrossbarSpec::default(),
            c,
            &Tensor::full(&[16, 4], 1.0),
            &model,
            &mut seeded_rng(0),
        )
        .unwrap();
        let high = Crossbar::program(
            CrossbarSpec::default(),
            c,
            &Tensor::full(&[16, 4], 255.0),
            &model,
            &mut seeded_rng(0),
        )
        .unwrap();
        assert!(high.read_power() > 5.0 * low.read_power());
    }

    #[test]
    fn split_ddv_ccv_preserves_total_variance() {
        let total = VariationModel::per_weight(0.5);
        let (d, c) = total.split_ddv_ccv(0.3);
        let s2 = d.sigma() * d.sigma() + c.sigma() * c.sigma();
        assert!((s2 - 0.25).abs() < 1e-12);
        let (d, c) = total.split_ddv_ccv(0.0);
        assert_eq!(d.sigma(), 0.0);
        assert_eq!(c.sigma(), 0.5);
    }

    #[test]
    fn ddv_program_is_deterministic_without_ccv() {
        let c = codec();
        let total = VariationModel::per_weight(0.5);
        let (ddv, _) = total.split_ddv_ccv(1.0);
        let ctw = Tensor::from_fn(&[8, 4], |i| ((i * 31) % 256) as f32);
        let factors = sample_ddv_factors(ctw.dims(), &ddv, &mut seeded_rng(7));
        let ccv_none = VariationModel::per_weight(0.0);
        let a = program_matrix_with_ddv(&ctw, &c, &factors, &ccv_none, &mut seeded_rng(1)).unwrap();
        let b = program_matrix_with_ddv(&ctw, &c, &factors, &ccv_none, &mut seeded_rng(2)).unwrap();
        assert_eq!(a, b, "pure DDV must repeat exactly across cycles");
        assert_ne!(a, ctw, "DDV factors must still perturb the weights");
    }

    #[test]
    fn ddv_plus_ccv_matches_total_statistics() {
        let c = codec();
        let total = VariationModel::per_weight(0.5);
        let (ddv, ccv) = total.split_ddv_ccv(0.5);
        let ctw = Tensor::full(&[64, 4], 100.0);
        let mut rng = seeded_rng(3);
        let mut sum = 0.0f64;
        let mut count = 0usize;
        for _ in 0..40 {
            let factors = sample_ddv_factors(ctw.dims(), &ddv, &mut rng);
            let crw = program_matrix_with_ddv(&ctw, &c, &factors, &ccv, &mut rng).unwrap();
            sum += crw.data().iter().map(|&v| v as f64).sum::<f64>();
            count += crw.len();
        }
        let (expected_mean, _) = total.moments(100, &c).unwrap();
        let mean = sum / count as f64;
        assert!((mean - expected_mean).abs() / expected_mean < 0.02, "{mean} vs {expected_mean}");
    }

    #[test]
    fn ddv_shape_mismatch_rejected() {
        let c = codec();
        let ctw = Tensor::zeros(&[4, 4]);
        let factors = Tensor::ones(&[4, 3]);
        assert!(program_matrix_with_ddv(
            &ctw,
            &c,
            &factors,
            &VariationModel::per_weight(0.1),
            &mut seeded_rng(0)
        )
        .is_err());
    }

    #[test]
    fn weight_cols_for_codecs() {
        let spec = CrossbarSpec::default();
        assert_eq!(spec.weight_cols(&codec()), 16); // 128 / 8 SLCs
        let mlc = WeightCodec::paper(CellTechnology::paper(CellKind::Mlc2));
        assert_eq!(spec.weight_cols(&mlc), 32); // 128 / 4 MLCs
    }
}
