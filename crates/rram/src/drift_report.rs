//! Drift introspection: where, and how far, a programmed crossbar has
//! wandered from its as-programmed state.
//!
//! [`column_deviation`] compares a baseline CRW (captured right after
//! programming) against the current one and folds the per-cell deviation
//! into per-*column* statistics. Columns are the natural repair unit:
//! one crossbar column is one output neuron's weight vector, so a
//! selective re-programming policy re-writes whole columns and a
//! re-tuning policy watches which outputs drifted hardest.

use rdo_tensor::Tensor;

use crate::{Result, RramError};

/// Per-column deviation of a drifted crossbar from its baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDriftReport {
    /// Mean `|current − baseline|` per column (crossbar orientation:
    /// column `j` holds output neuron `j`'s weights).
    pub per_column: Vec<f64>,
    /// Mean absolute deviation over the whole array.
    pub mean_abs: f64,
    /// Largest per-column mean absolute deviation.
    pub max_abs: f64,
}

impl ColumnDriftReport {
    /// Indices of the `k` worst-drifted columns, most-drifted first
    /// (ties broken by ascending index, so the selection is
    /// deterministic).
    pub fn worst_columns(&self, k: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.per_column.len()).collect();
        order.sort_by(|&a, &b| {
            self.per_column[b]
                .partial_cmp(&self.per_column[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        order.truncate(k);
        order
    }
}

/// Folds `|current − baseline|` into per-column means.
///
/// Both tensors must be the same 2-D `[fan_in, fan_out]` CRW (e.g. a
/// clone of [`MappedLayer::crw`](../rdo_core) taken at program time vs
/// the evolved one).
///
/// # Errors
///
/// Rejects non-2-D or shape-mismatched inputs.
pub fn column_deviation(baseline: &Tensor, current: &Tensor) -> Result<ColumnDriftReport> {
    if baseline.dims().len() != 2 {
        return Err(RramError::ShapeMismatch(format!(
            "column_deviation: expected a 2-D CRW, got {:?}",
            baseline.dims()
        )));
    }
    if baseline.dims() != current.dims() {
        return Err(RramError::ShapeMismatch(format!(
            "column_deviation: baseline {:?} vs current {:?} shape mismatch",
            baseline.dims(),
            current.dims()
        )));
    }
    let (rows, cols) = (baseline.dims()[0], baseline.dims()[1]);
    if rows == 0 || cols == 0 {
        return Err(RramError::ShapeMismatch("column_deviation: empty crossbar".to_string()));
    }
    let (b, c) = (baseline.data(), current.data());
    let mut per_column = vec![0.0f64; cols];
    for r in 0..rows {
        let row_b = &b[r * cols..(r + 1) * cols];
        let row_c = &c[r * cols..(r + 1) * cols];
        for (j, (pb, pc)) in row_b.iter().zip(row_c).enumerate() {
            per_column[j] += (f64::from(*pc) - f64::from(*pb)).abs();
        }
    }
    for v in &mut per_column {
        *v /= rows as f64;
    }
    let mean_abs = per_column.iter().sum::<f64>() / cols as f64;
    let max_abs = per_column.iter().fold(0.0f64, |m, &v| m.max(v));
    Ok(ColumnDriftReport { per_column, mean_abs, max_abs })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor(rows: usize, cols: usize, data: Vec<f32>) -> Tensor {
        Tensor::from_vec(data, &[rows, cols]).unwrap()
    }

    #[test]
    fn per_column_means_and_extremes() {
        let base = tensor(2, 3, vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
        let cur = tensor(2, 3, vec![1.0, 2.5, 2.0, 1.0, 1.5, 1.0]);
        let r = column_deviation(&base, &cur).unwrap();
        assert_eq!(r.per_column, vec![0.0, 0.5, 1.5]);
        assert!((r.mean_abs - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.max_abs, 1.5);
        assert_eq!(r.worst_columns(2), vec![2, 1]);
        assert_eq!(r.worst_columns(10), vec![2, 1, 0]);
    }

    #[test]
    fn ties_break_by_ascending_index() {
        let base = tensor(1, 3, vec![0.0, 0.0, 0.0]);
        let cur = tensor(1, 3, vec![1.0, 1.0, 1.0]);
        let r = column_deviation(&base, &cur).unwrap();
        assert_eq!(r.worst_columns(3), vec![0, 1, 2]);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let base = tensor(2, 2, vec![0.0; 4]);
        let cur = tensor(2, 3, vec![0.0; 6]);
        assert!(column_deviation(&base, &cur).is_err());
        let flat = Tensor::from_vec(vec![0.0; 4], &[4]).unwrap();
        assert!(column_deviation(&flat, &flat).is_err());
    }
}
