//! Bit-slicing codec: n-bit integer weights ↔ per-cell levels.
//!
//! A practical accelerator represents each binary weight with several
//! cells (Fig. 1(b) of the paper): an 8-bit weight needs 8 SLCs or 4
//! 2-bit MLCs, one cell per slice, with power-of-two place values combined
//! by the shift-and-add unit.

use serde::{Deserialize, Serialize};

use crate::device::CellTechnology;
use crate::error::{Result, RramError};

/// Maps integer weights of `weight_bits` bits onto a row of cells of the
/// given technology.
///
/// # Examples
///
/// ```
/// use rdo_rram::{CellKind, CellTechnology, WeightCodec};
///
/// let codec = WeightCodec::new(8, CellTechnology::paper(CellKind::Mlc2))?;
/// assert_eq!(codec.cells_per_weight(), 4);
/// let slices = codec.encode(0b10_11_01_00)?;
/// assert_eq!(slices, vec![0b00, 0b01, 0b11, 0b10]); // LSB slice first
/// assert_eq!(codec.decode(&slices)?, 0b10_11_01_00);
/// # Ok::<(), rdo_rram::RramError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightCodec {
    weight_bits: u32,
    cell: CellTechnology,
}

impl WeightCodec {
    /// Creates a codec.
    ///
    /// # Errors
    ///
    /// Returns [`RramError::InvalidGeometry`] if `weight_bits` is 0, larger
    /// than 16, or not a multiple of the cell bit width.
    pub fn new(weight_bits: u32, cell: CellTechnology) -> Result<Self> {
        if weight_bits == 0 || weight_bits > 16 {
            return Err(RramError::InvalidGeometry(format!(
                "unsupported weight width {weight_bits}"
            )));
        }
        if !weight_bits.is_multiple_of(cell.kind().bits()) {
            return Err(RramError::InvalidGeometry(format!(
                "weight width {weight_bits} is not a multiple of the {} cell width",
                cell.kind()
            )));
        }
        Ok(WeightCodec { weight_bits, cell })
    }

    /// The paper's 8-bit weight configuration over the given technology.
    ///
    /// # Panics
    ///
    /// Never panics: 8 is a multiple of both supported cell widths.
    pub fn paper(cell: CellTechnology) -> Self {
        WeightCodec::new(8, cell).expect("8-bit weights fit both cell kinds")
    }

    /// Weight bit width.
    pub fn weight_bits(&self) -> u32 {
        self.weight_bits
    }

    /// The cell technology.
    pub fn cell(&self) -> &CellTechnology {
        &self.cell
    }

    /// Cells needed per weight.
    pub fn cells_per_weight(&self) -> usize {
        (self.weight_bits / self.cell.kind().bits()) as usize
    }

    /// Number of representable weight levels, `2^weight_bits`.
    pub fn weight_levels(&self) -> u32 {
        1u32 << self.weight_bits
    }

    /// Largest representable weight, `2^weight_bits − 1`.
    pub fn max_weight(&self) -> u32 {
        self.weight_levels() - 1
    }

    /// Place value of slice `j` (slice 0 is least significant).
    pub fn place_value(&self, slice: usize) -> u32 {
        1u32 << (self.cell.kind().bits() as usize * slice)
    }

    /// Splits a weight into per-cell levels, least-significant slice first.
    ///
    /// # Errors
    ///
    /// Returns [`RramError::WeightOutOfRange`] if `value` does not fit.
    pub fn encode(&self, value: u32) -> Result<Vec<u32>> {
        let mut slices = vec![0u32; self.cells_per_weight()];
        self.encode_into(value, &mut slices)?;
        Ok(slices)
    }

    /// Allocation-free twin of [`WeightCodec::encode`]: splits a weight
    /// into per-cell levels, least-significant slice first, writing into a
    /// caller-provided buffer. The bulk programming paths call this once
    /// per weight, so it must not allocate.
    ///
    /// # Errors
    ///
    /// Returns [`RramError::WeightOutOfRange`] if `value` does not fit, or
    /// [`RramError::InvalidGeometry`] if `out` is not exactly
    /// [`WeightCodec::cells_per_weight`] long.
    pub fn encode_into(&self, value: u32, out: &mut [u32]) -> Result<()> {
        if value > self.max_weight() {
            return Err(RramError::WeightOutOfRange { value, levels: self.weight_levels() });
        }
        if out.len() != self.cells_per_weight() {
            return Err(RramError::InvalidGeometry(format!(
                "expected {} slices, got a buffer of {}",
                self.cells_per_weight(),
                out.len()
            )));
        }
        let cell_levels = self.cell.kind().levels();
        let mut v = value;
        for s in out.iter_mut() {
            *s = v % cell_levels;
            v /= cell_levels;
        }
        Ok(())
    }

    /// Reassembles a weight from per-cell levels.
    ///
    /// # Errors
    ///
    /// Returns [`RramError::InvalidGeometry`] if the slice count is wrong
    /// or [`RramError::WeightOutOfRange`] if any level is invalid.
    pub fn decode(&self, slices: &[u32]) -> Result<u32> {
        if slices.len() != self.cells_per_weight() {
            return Err(RramError::InvalidGeometry(format!(
                "expected {} slices, got {}",
                self.cells_per_weight(),
                slices.len()
            )));
        }
        let cell_levels = self.cell.kind().levels();
        let mut value = 0u32;
        for (j, &s) in slices.iter().enumerate() {
            if s >= cell_levels {
                return Err(RramError::WeightOutOfRange { value: s, levels: cell_levels });
            }
            value += s * self.place_value(j);
        }
        Ok(value)
    }

    /// Total nominal leakage (HRS floor) of one weight's cells in weight
    /// units: `Σⱼ place(j) · floor`. This is the deterministic conductance
    /// offset the read-out calibrates away.
    pub fn total_floor(&self) -> f64 {
        (0..self.cells_per_weight()).map(|j| self.place_value(j) as f64 * self.cell.floor()).sum()
    }

    /// Nominal total conductance of a weight `v` in weight units,
    /// including leakage: `v + total_floor()`.
    ///
    /// # Errors
    ///
    /// Returns [`RramError::WeightOutOfRange`] if `v` does not fit.
    pub fn nominal_conductance(&self, v: u32) -> Result<f64> {
        if v > self.max_weight() {
            return Err(RramError::WeightOutOfRange { value: v, levels: self.weight_levels() });
        }
        Ok(v as f64 + self.total_floor())
    }

    /// Relative read power of a weight `v`: the sum of each cell's
    /// conductance (power ∝ conductance at fixed read voltage). Unlike
    /// [`WeightCodec::nominal_conductance`], slices are *not* weighted by
    /// place value — every cell is read at the same voltage, so a HRS cell
    /// costs the same whether it holds bit 0 or bit 7.
    ///
    /// # Errors
    ///
    /// Returns [`RramError::WeightOutOfRange`] if `v` does not fit.
    pub fn read_power(&self, v: u32) -> Result<f64> {
        // weight_bits ≤ 16 bounds cells_per_weight at 16: a stack buffer
        // keeps this allocation-free (it runs once per CTW entry in
        // `MappedNetwork::read_power`)
        let mut slices = [0u32; 16];
        let n = self.cells_per_weight();
        self.encode_into(v, &mut slices[..n])?;
        Ok(slices[..n].iter().map(|&s| self.cell.read_power(s)).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::CellKind;

    fn slc() -> WeightCodec {
        WeightCodec::paper(CellTechnology::paper(CellKind::Slc))
    }

    fn mlc() -> WeightCodec {
        WeightCodec::paper(CellTechnology::paper(CellKind::Mlc2))
    }

    #[test]
    fn cells_per_weight_matches_paper() {
        // §IV-C2: "Our method uses 4 2-bit MLCs to represent a weight";
        // DVA uses 8 SLCs.
        assert_eq!(slc().cells_per_weight(), 8);
        assert_eq!(mlc().cells_per_weight(), 4);
    }

    #[test]
    fn encode_decode_roundtrip_all_values() {
        for codec in [slc(), mlc()] {
            for v in 0..=codec.max_weight() {
                let slices = codec.encode(v).unwrap();
                assert_eq!(codec.decode(&slices).unwrap(), v);
            }
        }
    }

    #[test]
    fn slc_encoding_is_binary() {
        let slices = slc().encode(0b1010_0110).unwrap();
        assert_eq!(slices, vec![0, 1, 1, 0, 0, 1, 0, 1]); // LSB first
    }

    #[test]
    fn encode_into_matches_encode() {
        for codec in [slc(), mlc()] {
            let mut buf = vec![0u32; codec.cells_per_weight()];
            for v in 0..=codec.max_weight() {
                codec.encode_into(v, &mut buf).unwrap();
                assert_eq!(buf, codec.encode(v).unwrap());
            }
            assert!(codec.encode_into(256, &mut buf).is_err());
            assert!(codec.encode_into(0, &mut buf[..1]).is_err()); // short buffer
        }
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(slc().encode(256).is_err());
        assert!(mlc().decode(&[4, 0, 0, 0]).is_err());
        assert!(mlc().decode(&[0, 0]).is_err());
    }

    #[test]
    fn invalid_geometry_rejected() {
        let mlc2 = CellTechnology::paper(CellKind::Mlc2);
        assert!(WeightCodec::new(7, mlc2).is_err()); // 7 not multiple of 2
        assert!(WeightCodec::new(0, mlc2).is_err());
        assert!(WeightCodec::new(17, mlc2).is_err());
    }

    #[test]
    fn read_power_monotone_in_ones_density() {
        let c = slc();
        // 0x00 (all HRS) cheapest; 0xFF (all LRS) most expensive
        let p0 = c.read_power(0).unwrap();
        let p255 = c.read_power(255).unwrap();
        assert!(p255 > 50.0 * p0);
        // value 1 and value 128 both have exactly one LRS cell → equal power
        assert!((c.read_power(1).unwrap() - c.read_power(128).unwrap()).abs() < 1e-9);
    }

    #[test]
    fn nominal_conductance_includes_floor() {
        let c = mlc();
        let g0 = c.nominal_conductance(0).unwrap();
        assert!((g0 - c.total_floor()).abs() < 1e-12);
        let g255 = c.nominal_conductance(255).unwrap();
        assert!((g255 - (255.0 + c.total_floor())).abs() < 1e-9);
    }
}
