//! Tiling of layer weight matrices onto fixed-size crossbars.
//!
//! A layer's `(fan_in, fan_out)` weight matrix rarely fits one 128×128
//! array: fan-in is tiled along wordlines and fan-out along bitlines
//! (each weight consuming `cells_per_weight` bitlines). The tile count
//! feeds the Table III crossbar-number comparison, and the row-tile
//! boundaries determine where offset groups may sit.

use serde::{Deserialize, Serialize};

use crate::codec::WeightCodec;
use crate::crossbar::CrossbarSpec;
use crate::error::{Result, RramError};

/// How a `(fan_in, fan_out)` weight matrix tiles onto crossbars.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileMapping {
    /// Matrix rows (fan-in).
    pub fan_in: usize,
    /// Matrix columns (fan-out).
    pub fan_out: usize,
    /// Rows per crossbar.
    pub rows_per_tile: usize,
    /// Weight columns per crossbar.
    pub weight_cols_per_tile: usize,
}

impl TileMapping {
    /// Computes the mapping of a matrix onto arrays of `spec` using
    /// `codec` (which fixes how many bitlines one weight needs).
    ///
    /// # Errors
    ///
    /// Returns [`RramError::InvalidGeometry`] if the matrix is empty or a
    /// weight does not fit one array's bitlines.
    pub fn new(
        fan_in: usize,
        fan_out: usize,
        spec: CrossbarSpec,
        codec: &WeightCodec,
    ) -> Result<Self> {
        if fan_in == 0 || fan_out == 0 {
            return Err(RramError::InvalidGeometry("cannot map an empty matrix".to_string()));
        }
        let weight_cols = spec.weight_cols(codec);
        if weight_cols == 0 {
            return Err(RramError::InvalidGeometry(format!(
                "one {}-cell weight does not fit {} bitlines",
                codec.cells_per_weight(),
                spec.cols
            )));
        }
        Ok(TileMapping {
            fan_in,
            fan_out,
            rows_per_tile: spec.rows,
            weight_cols_per_tile: weight_cols,
        })
    }

    /// Tiles along the fan-in (wordline) axis.
    pub fn row_tiles(&self) -> usize {
        self.fan_in.div_ceil(self.rows_per_tile)
    }

    /// Tiles along the fan-out (bitline) axis.
    pub fn col_tiles(&self) -> usize {
        self.fan_out.div_ceil(self.weight_cols_per_tile)
    }

    /// Total crossbars this matrix occupies.
    pub fn crossbars(&self) -> usize {
        self.row_tiles() * self.col_tiles()
    }

    /// Row range `[start, end)` of row-tile `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= row_tiles()`.
    pub fn row_range(&self, t: usize) -> (usize, usize) {
        assert!(t < self.row_tiles(), "row tile {t} out of range");
        let start = t * self.rows_per_tile;
        (start, (start + self.rows_per_tile).min(self.fan_in))
    }

    /// Iterates over row-tile ranges.
    pub fn row_ranges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.row_tiles()).map(|t| self.row_range(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{CellKind, CellTechnology};

    fn slc_codec() -> WeightCodec {
        WeightCodec::paper(CellTechnology::paper(CellKind::Slc))
    }

    #[test]
    fn small_matrix_fits_one_tile() {
        let m = TileMapping::new(100, 10, CrossbarSpec::default(), &slc_codec()).unwrap();
        assert_eq!(m.crossbars(), 1);
        assert_eq!(m.row_tiles(), 1);
        assert_eq!(m.row_range(0), (0, 100));
    }

    #[test]
    fn large_matrix_tiles_both_axes() {
        // 400×120 weights, SLC-8: 16 weight cols/tile ⇒ ceil(400/128)=4
        // row tiles × ceil(120/16)=8 col tiles = 32 crossbars
        let m = TileMapping::new(400, 120, CrossbarSpec::default(), &slc_codec()).unwrap();
        assert_eq!(m.row_tiles(), 4);
        assert_eq!(m.col_tiles(), 8);
        assert_eq!(m.crossbars(), 32);
        assert_eq!(m.row_range(3), (384, 400)); // last tile is partial
    }

    #[test]
    fn mlc_needs_half_the_column_tiles() {
        let mlc = WeightCodec::paper(CellTechnology::paper(CellKind::Mlc2));
        let s = TileMapping::new(128, 128, CrossbarSpec::default(), &slc_codec()).unwrap();
        let m = TileMapping::new(128, 128, CrossbarSpec::default(), &mlc).unwrap();
        assert_eq!(s.col_tiles(), 8);
        assert_eq!(m.col_tiles(), 4);
    }

    #[test]
    fn row_ranges_partition_fan_in() {
        let m = TileMapping::new(300, 16, CrossbarSpec::default(), &slc_codec()).unwrap();
        let total: usize = m.row_ranges().map(|(a, b)| b - a).sum();
        assert_eq!(total, 300);
        let mut prev_end = 0;
        for (a, b) in m.row_ranges() {
            assert_eq!(a, prev_end);
            assert!(b > a);
            prev_end = b;
        }
    }

    #[test]
    fn empty_matrix_rejected() {
        assert!(TileMapping::new(0, 4, CrossbarSpec::default(), &slc_codec()).is_err());
        assert!(TileMapping::new(4, 0, CrossbarSpec::default(), &slc_codec()).is_err());
    }

    #[test]
    fn too_narrow_array_rejected() {
        let spec = CrossbarSpec::new(128, 4); // 4 bitlines < 8 cells/weight
        assert!(TileMapping::new(8, 8, spec, &slc_codec()).is_err());
    }
}
