//! Property-based tests for the device, codec and LUT layers.

use proptest::prelude::*;
use rdo_rram::{
    program_matrix, program_matrix_scalar, program_matrix_with_ddv, program_matrix_with_ddv_scalar,
    sample_ddv_factors, Adc, BitSerialEvaluator, CellKind, CellTechnology, Crossbar, CrossbarSpec,
    DeviceLut, VariationKind, VariationModel, WeightCodec,
};
use rdo_tensor::rng::seeded_rng;
use rdo_tensor::Tensor;

fn codec_strategy() -> impl Strategy<Value = WeightCodec> {
    prop_oneof![
        Just(WeightCodec::paper(CellTechnology::paper(CellKind::Slc))),
        Just(WeightCodec::paper(CellTechnology::paper(CellKind::Mlc2))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode/decode is the identity on every representable weight.
    #[test]
    fn codec_roundtrip(codec in codec_strategy(), v in 0u32..256) {
        let slices = codec.encode(v).unwrap();
        prop_assert_eq!(slices.len(), codec.cells_per_weight());
        prop_assert_eq!(codec.decode(&slices).unwrap(), v);
    }

    /// The decoded value equals the place-value sum of the slices.
    #[test]
    fn codec_place_values(codec in codec_strategy(), v in 0u32..256) {
        let slices = codec.encode(v).unwrap();
        let sum: u32 = slices
            .iter()
            .enumerate()
            .map(|(j, &s)| s * codec.place_value(j))
            .sum();
        prop_assert_eq!(sum, v);
    }

    /// Zero-σ writes are exact for both variation kinds.
    #[test]
    fn zero_sigma_write_is_exact(
        codec in codec_strategy(),
        v in 0u32..256,
        per_cell in proptest::bool::ANY,
        seed in 0u64..1000,
    ) {
        let kind = if per_cell { VariationKind::PerCell } else { VariationKind::PerWeight };
        let model = VariationModel::new(0.0, kind);
        let mut rng = seeded_rng(seed);
        let crw = model.write(v, &codec, &mut rng).unwrap();
        prop_assert!((crw - v as f64).abs() < 1e-9);
    }

    /// The analytic LUT is strictly monotone and inverts exactly on its
    /// own means, for any σ and either cell kind.
    #[test]
    fn lut_monotone_and_invertible(
        codec in codec_strategy(),
        sigma in 0.05f64..1.0,
        v in 0u32..256,
    ) {
        let model = VariationModel::per_weight(sigma);
        let lut = DeviceLut::analytic(&model, &codec).unwrap();
        prop_assert!(lut.is_monotone());
        prop_assert_eq!(lut.inverse_mean(lut.mean(v)), v);
    }

    /// inverse_mean always returns the closest entry.
    #[test]
    fn inverse_mean_is_nearest(
        sigma in 0.05f64..1.0,
        target in -50.0f64..400.0,
    ) {
        let codec = WeightCodec::paper(CellTechnology::paper(CellKind::Slc));
        let lut = DeviceLut::analytic(&VariationModel::per_weight(sigma), &codec).unwrap();
        let v = lut.inverse_mean(target);
        let d = (lut.mean(v) - target).abs();
        for cand in [v.saturating_sub(1), (v + 1).min(255)] {
            prop_assert!(d <= (lut.mean(cand) - target).abs() + 1e-9);
        }
    }

    /// E[R(v)] ≥ v under lognormal noise (mean inflation), with equality
    /// only as σ → 0.
    #[test]
    fn mean_inflation_nonnegative(
        codec in codec_strategy(),
        sigma in 0.05f64..1.0,
        v in 0u32..256,
    ) {
        let model = VariationModel::per_weight(sigma);
        let (mean, var) = model.moments(v, &codec).unwrap();
        prop_assert!(mean >= v as f64 - 1e-9);
        prop_assert!(var >= 0.0);
    }

    /// Variance grows with the stored value for the per-weight model.
    #[test]
    fn variance_monotone_in_value(sigma in 0.1f64..1.0, v in 0u32..255) {
        let codec = WeightCodec::paper(CellTechnology::paper(CellKind::Slc));
        let model = VariationModel::per_weight(sigma);
        let (_, var_lo) = model.moments(v, &codec).unwrap();
        let (_, var_hi) = model.moments(v + 1, &codec).unwrap();
        prop_assert!(var_hi > var_lo);
    }

    /// Read power is monotone in the sum of cell levels and invariant to
    /// which cells hold them (same level multiset ⇒ same power).
    #[test]
    fn read_power_depends_on_level_multiset(v in 0u32..256) {
        let codec = WeightCodec::paper(CellTechnology::paper(CellKind::Slc));
        // bit-rotating an SLC pattern preserves the popcount ⇒ same power
        let rotated = ((v << 1) | (v >> 7)) & 0xFF;
        let p1 = codec.read_power(v).unwrap();
        let p2 = codec.read_power(rotated).unwrap();
        prop_assert!((p1 - p2).abs() < 1e-9, "{} vs {}", p1, p2);
    }

    /// The bulk programming path is bitwise identical to the scalar
    /// per-entry path for any σ (including 0), either variation kind
    /// and either cell kind, at any matching seed.
    #[test]
    fn bulk_program_matches_scalar(
        codec in codec_strategy(),
        sigma in prop_oneof![Just(0.0f64), 0.05f64..1.0],
        per_cell in proptest::bool::ANY,
        seed in 0u64..1000,
        rows in 1usize..12,
        cols in 1usize..12,
    ) {
        let kind = if per_cell { VariationKind::PerCell } else { VariationKind::PerWeight };
        let model = VariationModel::new(sigma, kind);
        let ctw = Tensor::from_fn(&[rows, cols], |i| {
            ((i as u64 * (seed * 13 + 5) + seed) % 256) as f32
        });
        let bulk = program_matrix(&ctw, &codec, &model, &mut seeded_rng(seed)).unwrap();
        let scalar = program_matrix_scalar(&ctw, &codec, &model, &mut seeded_rng(seed)).unwrap();
        for (a, b) in bulk.data().iter().zip(scalar.data()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Same bitwise guarantee for the DDV + CCV programming path.
    #[test]
    fn bulk_ddv_program_matches_scalar(
        codec in codec_strategy(),
        ddv_sigma in prop_oneof![Just(0.0f64), 0.05f64..0.5],
        ccv_sigma in prop_oneof![Just(0.0f64), 0.05f64..0.5],
        seed in 0u64..1000,
        rows in 1usize..10,
        cols in 1usize..10,
    ) {
        let ctw = Tensor::from_fn(&[rows, cols], |i| {
            ((i as u64 * (seed * 17 + 3) + seed) % 256) as f32
        });
        let ddv = VariationModel::per_weight(ddv_sigma);
        let ccv = VariationModel::per_weight(ccv_sigma);
        let factors = sample_ddv_factors(&[rows, cols], &ddv, &mut seeded_rng(seed ^ 0xD0));
        let bulk =
            program_matrix_with_ddv(&ctw, &codec, &factors, &ccv, &mut seeded_rng(seed)).unwrap();
        let scalar =
            program_matrix_with_ddv_scalar(&ctw, &codec, &factors, &ccv, &mut seeded_rng(seed))
                .unwrap();
        for (a, b) in bulk.data().iter().zip(scalar.data()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// The binary-search mean inverse agrees with an exhaustive linear
    /// scan over the whole table, for any target.
    #[test]
    fn inverse_mean_matches_linear_scan(
        codec in codec_strategy(),
        sigma in 0.05f64..1.0,
        target in -80.0f64..500.0,
    ) {
        let lut = DeviceLut::analytic(&VariationModel::per_weight(sigma), &codec).unwrap();
        prop_assert_eq!(lut.inverse_mean(target), lut.inverse_mean_linear(target));
    }

    /// The integer bit-serial readout agrees with the float evaluator
    /// on ideal-ADC zero-σ fixtures: both reduce to the weighted dot
    /// product, for either cell technology, any sub-array occupancy and
    /// any activation granularity. (The float pipeline rounds through
    /// the non-dyadic HRS floor, so agreement is to float tolerance,
    /// not to the bit.)
    #[test]
    fn qint_readout_matches_float_on_ideal_adc(
        codec in codec_strategy(),
        rows in 1usize..40,
        wcols in 1usize..12,
        m in 1usize..48,
        seed in 0u64..1000,
    ) {
        let spec = CrossbarSpec::new(rows.max(8), (wcols * codec.cells_per_weight()).max(8));
        let ctw = Tensor::from_fn(&[rows, wcols], |i| {
            ((i as u64).wrapping_mul(seed + 31) % 256) as f32
        });
        // σ = 0: programmed levels are nominal, so both pipelines see
        // the same stored integers
        let model = VariationModel::new(0.0, VariationKind::PerWeight);
        let xb = Crossbar::program(spec, codec.clone(), &ctw, &model, &mut seeded_rng(seed))
            .unwrap();
        let x: Vec<u32> = (0..rows)
            .map(|r| ((r as u64).wrapping_mul(seed + 89) % 256) as u32)
            .collect();
        let eval = BitSerialEvaluator::new(Adc::ideal(), 8, m);
        let yf = eval.evaluate(&xb, &x).unwrap();
        let yi = eval.evaluate_qint(&xb, &x).unwrap();
        for (a, b) in yf.iter().zip(&yi) {
            prop_assert!((a - b).abs() < 1e-6 * a.abs().max(1.0), "{} vs {}", a, b);
        }
    }
}
