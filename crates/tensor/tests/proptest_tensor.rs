//! Property-based tests for the tensor substrate.

use proptest::prelude::*;
use rdo_tensor::microkernel::{KC, MR, NR};
use rdo_tensor::{
    col2im, gemm_i8_i32, gemm_i8_i32_scalar, im2col, matmul, matmul_into_serial,
    matmul_into_threads, BitPlanes, Conv2dGeometry, Tensor,
};

/// Dimensions that straddle the microkernel tile and panel boundaries:
/// one below, exactly on, and one above each multiple of the tile size.
fn around_multiples_of(tile: usize, max_mult: usize) -> impl Strategy<Value = usize> {
    (1..=max_mult, prop_oneof![Just(-1i64), Just(0), Just(1)])
        .prop_map(move |(mult, off)| ((mult * tile) as i64 + off).max(1) as usize)
}

fn tensor_strategy(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-100.0f32..100.0, r * c)
            .prop_map(move |v| Tensor::from_vec(v, &[r, c]).expect("consistent"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (A + B) + C == A + (B + C) up to float tolerance.
    #[test]
    fn add_is_associative(v in proptest::collection::vec(-1e3f32..1e3, 12)) {
        let a = Tensor::from_vec(v[0..4].to_vec(), &[4]).unwrap();
        let b = Tensor::from_vec(v[4..8].to_vec(), &[4]).unwrap();
        let c = Tensor::from_vec(v[8..12].to_vec(), &[4]).unwrap();
        let l = a.add(&b).unwrap().add(&c).unwrap();
        let r = a.add(&b.add(&c).unwrap()).unwrap();
        for (x, y) in l.data().iter().zip(r.data()) {
            prop_assert!((x - y).abs() <= 1e-2 * x.abs().max(1.0));
        }
    }

    /// Transposition is an involution on any matrix.
    #[test]
    fn transpose_involution(t in tensor_strategy(12)) {
        prop_assert_eq!(t.transpose2().unwrap().transpose2().unwrap(), t);
    }

    /// (A·B)ᵀ == Bᵀ·Aᵀ.
    #[test]
    fn matmul_transpose_identity(
        a in tensor_strategy(10),
        bcols in 1usize..10,
        seed in 0u64..1000,
    ) {
        let k = a.dims()[1];
        let b = Tensor::from_fn(&[k, bcols], |i| {
            ((i as u64).wrapping_mul(seed + 1) % 17) as f32 - 8.0
        });
        let lhs = matmul(&a, &b).unwrap().transpose2().unwrap();
        let rhs = matmul(&b.transpose2().unwrap(), &a.transpose2().unwrap()).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() <= 1e-2 * x.abs().max(1.0), "{} vs {}", x, y);
        }
    }

    /// Matmul distributes over addition: A·(B+C) == A·B + A·C.
    #[test]
    fn matmul_distributes(a in tensor_strategy(8), seed in 0u64..100) {
        let k = a.dims()[1];
        let mk = |s: u64| Tensor::from_fn(&[k, 5], |i| {
            ((i as u64).wrapping_mul(s * 31 + 7) % 13) as f32 - 6.0
        });
        let (b, c) = (mk(seed), mk(seed + 1));
        let lhs = matmul(&a, &b.add(&c).unwrap()).unwrap();
        let rhs = matmul(&a, &b).unwrap().add(&matmul(&a, &c).unwrap()).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() <= 1e-2 * x.abs().max(1.0));
        }
    }

    /// Scaling commutes with summation: sum(αx) == α·sum(x).
    #[test]
    fn scale_sum_commute(t in tensor_strategy(12), alpha in -10.0f32..10.0) {
        let lhs = t.scale(alpha).sum();
        let rhs = alpha * t.sum();
        prop_assert!((lhs - rhs).abs() <= 1e-2 * rhs.abs().max(1.0));
    }

    /// col2im is the adjoint of im2col for random geometries.
    #[test]
    fn im2col_adjoint(
        h in 3usize..8,
        w in 3usize..8,
        c in 1usize..3,
        k in 1usize..4,
        pad in 0usize..2,
        stride in 1usize..3,
        seed in 0u64..1000,
    ) {
        prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
        let geom = Conv2dGeometry::new(c, 1, k, stride, pad);
        let x = Tensor::from_fn(&[1, c, h, w], |i| {
            ((i as u64).wrapping_mul(seed + 3) % 23) as f32 - 11.0
        });
        let cols = im2col(&x, &geom).unwrap();
        let g = Tensor::from_fn(cols.dims(), |i| {
            ((i as u64).wrapping_mul(seed + 5) % 19) as f32 - 9.0
        });
        let back = col2im(&g, &geom, 1, h, w).unwrap();
        let lhs: f32 = cols.data().iter().zip(g.data()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() <= 1e-2 * lhs.abs().max(1.0), "{} vs {}", lhs, rhs);
    }

    /// Reshape never alters data, only the shape.
    #[test]
    fn reshape_preserves_data(t in tensor_strategy(12)) {
        let n = t.len();
        let flat = t.reshape(&[n]).unwrap();
        prop_assert_eq!(flat.data(), t.data());
    }

    /// Row-partitioned parallel matmul is bitwise identical to the serial
    /// kernel for every shape and thread count: each output row's
    /// k-accumulation order is unchanged by the partitioning.
    #[test]
    fn parallel_matmul_matches_serial_bitwise(
        m in 1usize..24,
        k in 1usize..16,
        n in 1usize..16,
        threads in 1usize..5,
        seed in 0u64..1000,
    ) {
        let a: Vec<f32> = (0..m * k)
            .map(|i| ((i as u64).wrapping_mul(seed + 11) % 29) as f32 - 14.0)
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| ((i as u64).wrapping_mul(seed + 13) % 31) as f32 - 15.0)
            .collect();
        let mut serial = vec![0.0f32; m * n];
        let mut parallel = vec![0.0f32; m * n];
        matmul_into_serial(&a, &b, &mut serial, m, k, n);
        matmul_into_threads(&a, &b, &mut parallel, m, k, n, threads);
        prop_assert_eq!(serial, parallel);
    }

    /// The tiled microkernel agrees with a naive f64-accumulated reference
    /// on shapes chosen to straddle the MR/NR register-tile and KC panel
    /// boundaries — the edge-tile and remainder paths, not just the happy
    /// full-tile interior.
    #[test]
    fn microkernel_matches_naive_at_tile_boundaries(
        m in around_multiples_of(MR, 5),
        k in around_multiples_of(KC, 2),
        n in around_multiples_of(NR, 3),
        seed in 0u64..1000,
    ) {
        let a: Vec<f32> = (0..m * k)
            .map(|i| ((i as u64).wrapping_mul(seed + 17) % 23) as f32 * 0.37 - 4.0)
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| ((i as u64).wrapping_mul(seed + 19) % 29) as f32 * 0.29 - 4.0)
            .collect();
        let mut c = vec![0.0f32; m * n];
        matmul_into_serial(&a, &b, &mut c, m, k, n);
        for i in 0..m {
            for j in 0..n {
                let want: f64 = (0..k)
                    .map(|p| f64::from(a[i * k + p]) * f64::from(b[p * n + j]))
                    .sum();
                let got = f64::from(c[i * n + j]);
                prop_assert!(
                    (got - want).abs() <= 1e-3 * want.abs().max(1.0),
                    "({}, {}): {} vs {}", i, j, got, want
                );
            }
        }
    }

    /// Bitwise serial/threaded agreement at the documented thread counts,
    /// including 0 (auto) and counts far beyond the row-tile count.
    #[test]
    fn thread_count_never_changes_bits(
        m in 1usize..30,
        k in 1usize..20,
        n in 1usize..20,
        tidx in 0usize..6,
        seed in 0u64..1000,
    ) {
        let threads = [0usize, 1, 2, 3, 8, 64][tidx];
        let a: Vec<f32> = (0..m * k)
            .map(|i| ((i as u64).wrapping_mul(seed + 23) % 31) as f32 - 15.0)
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| ((i as u64).wrapping_mul(seed + 29) % 37) as f32 - 18.0)
            .collect();
        let mut serial = vec![0.0f32; m * n];
        let mut threaded = vec![0.0f32; m * n];
        matmul_into_serial(&a, &b, &mut serial, m, k, n);
        matmul_into_threads(&a, &b, &mut threaded, m, k, n, threads);
        prop_assert_eq!(serial, threaded);
    }

    /// Bit-plane packing round-trips every value at every width,
    /// including lengths that straddle the 64-bit word boundary.
    #[test]
    fn bit_planes_pack_unpack_roundtrip(
        bits in 1u32..=32,
        len in 0usize..200,
        seed in 0u64..1000,
    ) {
        let mask = if bits == 32 { u32::MAX } else { (1u32 << bits) - 1 };
        let values: Vec<u32> = (0..len)
            .map(|i| ((i as u64).wrapping_mul(seed.wrapping_mul(0x9e37_79b9).wrapping_add(41)) >> 7) as u32 & mask)
            .collect();
        let planes = BitPlanes::pack(&values, bits).unwrap();
        prop_assert_eq!(planes.len(), len);
        prop_assert_eq!(planes.unpack(), values);
        // padding bits beyond `len` are zero in every plane — the
        // contract the whole-plane popcount kernels rely on
        for b in 0..bits {
            let plane = planes.plane(b);
            for (w, &word) in plane.iter().enumerate() {
                for s in 0..64 {
                    if w * 64 + s >= len {
                        prop_assert_eq!((word >> s) & 1, 0, "padding bit set");
                    }
                }
            }
        }
    }

    /// The vectorizable i8 GEMM agrees bit-for-bit with its scalar
    /// oracle at every documented thread count, including 0 (auto) and
    /// counts beyond the row count.
    #[test]
    fn gemm_i8_matches_scalar_oracle_at_any_threads(
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
        tidx in 0usize..5,
        seed in 0u64..1000,
    ) {
        let threads = [0usize, 1, 2, 3, 8][tidx];
        let a: Vec<i8> = (0..m * k)
            .map(|i| ((i as u64).wrapping_mul(seed + 13) % 256) as u8 as i8)
            .collect();
        let b: Vec<i8> = (0..k * n)
            .map(|i| ((i as u64).wrapping_mul(seed + 17) % 256) as u8 as i8)
            .collect();
        // non-zero initial accumulators: both kernels must accumulate
        let mut fast: Vec<i32> = (0..m * n).map(|i| i as i32 - 7).collect();
        let mut oracle = fast.clone();
        gemm_i8_i32(&a, &b, &mut fast, m, k, n, threads);
        gemm_i8_i32_scalar(&a, &b, &mut oracle, m, k, n);
        prop_assert_eq!(fast, oracle);
    }
}
