//! Shape and stride arithmetic for dense row-major tensors.

use crate::error::{Result, TensorError};

/// A tensor shape: an ordered list of dimension sizes, row-major.
///
/// `Shape` is a thin, copy-friendly wrapper over a `Vec<usize>` that
/// centralizes element-count and stride computations so that the rest of the
/// crate never recomputes them ad hoc.
///
/// # Examples
///
/// ```
/// use rdo_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimension sizes.
    pub fn new(dims: &[usize]) -> Self {
        Shape { dims: dims.to_vec() }
    }

    /// Total number of elements (product of all dimensions).
    ///
    /// An empty (rank-0) shape has one element, matching the scalar
    /// convention.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Returns `true` if the shape contains no elements (some dimension is 0).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// The dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides (in elements) for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat row-major offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `index` has the wrong
    /// rank or any coordinate exceeds its dimension.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.dims.len() || index.iter().zip(&self.dims).any(|(&i, &d)| i >= d) {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.dims.clone(),
            });
        }
        let strides = self.strides();
        Ok(index.iter().zip(&strides).map(|(&i, &s)| i * s).sum())
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_and_rank() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.len(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.dim(1), 3);
    }

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::new(&[]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.rank(), 0);
        assert!(!s.is_empty());
    }

    #[test]
    fn zero_dim_is_empty() {
        let s = Shape::new(&[3, 0, 2]);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert_eq!(Shape::new(&[]).strides(), Vec::<usize>::new());
    }

    #[test]
    fn offset_roundtrip() {
        let s = Shape::new(&[2, 3, 4]);
        let mut seen = std::collections::HashSet::new();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let off = s.offset(&[i, j, k]).unwrap();
                    assert!(off < s.len());
                    assert!(seen.insert(off), "offsets must be unique");
                }
            }
        }
        assert_eq!(seen.len(), 24);
    }

    #[test]
    fn offset_out_of_bounds() {
        let s = Shape::new(&[2, 3]);
        assert!(s.offset(&[2, 0]).is_err());
        assert!(s.offset(&[0, 3]).is_err());
        assert!(s.offset(&[0]).is_err());
    }
}
