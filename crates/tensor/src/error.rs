//! Error type for tensor operations.

use std::fmt;

/// Error produced by fallible tensor operations.
///
/// # Examples
///
/// ```
/// use rdo_tensor::{Tensor, TensorError};
///
/// let t = Tensor::zeros(&[2, 3]);
/// let err = t.reshape(&[7]).unwrap_err();
/// assert!(matches!(err, TensorError::ShapeMismatch { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The shapes of the operands are incompatible for the requested
    /// operation (element counts or dimensions differ).
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left-hand / primary operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand / requested operand.
        rhs: Vec<usize>,
    },
    /// An index was out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor shape it was applied to.
        shape: Vec<usize>,
    },
    /// The operation required a tensor of a specific rank.
    RankMismatch {
        /// Operation name.
        op: &'static str,
        /// Expected rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
    },
    /// An argument was invalid (empty shape, zero dimension where one is
    /// not allowed, etc.).
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in {op}: {lhs:?} vs {rhs:?}")
            }
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::RankMismatch { op, expected, actual } => {
                write!(f, "{op} expects rank {expected}, got rank {actual}")
            }
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

/// Convenient result alias used across the tensor crate.
pub type Result<T> = std::result::Result<T, TensorError>;
