//! Register-tiled GEMM microkernel with operand panel packing.
//!
//! This module is the single canonical inner kernel behind every dense
//! product in the workspace: [`crate::matmul`] and friends route here, the
//! `rdo-nn` layers call the layout-aware entry points directly (so forward
//! and backward passes never materialize a transposed weight matrix), and
//! the RRAM ADC path shares the [`gevm_into_f64`] column-accumulation
//! kernel.
//!
//! # Kernel architecture
//!
//! The classic three-level blocking, written in safe Rust so the compiler
//! autovectorizes the innermost tile:
//!
//! 1. **Packing.** `B` is repacked once per product into panels of
//!    [`NR`] columns ([`pack_b`]): panel `j` stores rows `0..k` of columns
//!    `j·NR..(j+1)·NR` contiguously, zero-padded to a full panel. `A` is
//!    packed per [`KC`]-row block into micro-panels of [`MR`] rows
//!    ([`pack_a_block`]). Packing reads either a row-major or a transposed
//!    operand, which is how the `NT`/`TN` entry points avoid explicit
//!    transposes.
//! 2. **Register tile.** The microkernel accumulates an `MR × NR` tile of
//!    `C` in a fixed-size local array over one `KC` block; the fixed-size
//!    loops vectorize without any `unsafe` or intrinsics.
//! 3. **Threading.** Output rows are partitioned into whole `MR`-row
//!    tiles anchored at row 0, contiguous tile ranges per worker. Every
//!    tile is computed by exactly the same code on the same packed data
//!    whichever worker runs it, so the product is **bitwise identical for
//!    any thread count** — the same determinism contract the parallel
//!    experiment engine relies on.
//!
//! Shape-degenerate cases (`m == 1`, `n == 1`, `k ≤ 1`) dispatch to
//! dedicated vector kernels ([`gevm`], [`gemv`], rank-1 update) with the
//! same determinism guarantee, so `matvec`/`vecmat`/`outer` share this
//! path instead of bespoke loops.
//!
//! The operation order differs from the pre-microkernel scalar kernel
//! (lane-blocked reductions instead of strictly sequential `k`), so
//! absolute values may differ from it within normal f32 tolerance; the
//! legacy kernel is kept as [`crate::matmul::matmul_into_scalar`] for
//! reference and benchmarking.

// GEMM entry points take the conventional (a, b, c, m, k, n, threads,
// scratch) argument list; bundling the dimensions into a struct would
// only obscure the BLAS-shaped API.
#![allow(clippy::too_many_arguments)]

use std::sync::Mutex;

use crate::pool;
use crate::scratch::Scratch;

/// Whether the compile target has 256-bit (or wider) vector units; the
/// register tile is sized to the vector register file at compile time.
/// The tile size never changes results — every `C` element is always
/// accumulated in ascending `k` — so this is purely a throughput knob.
const WIDE_SIMD: bool = cfg!(any(target_feature = "avx2", target_feature = "avx512f"));

/// Rows per register tile. Four rows is the sweet spot for both targets:
/// the accumulator stays small enough for the compiler to promote it
/// entirely into registers (larger tiles fall off that cliff and
/// scalarize), while `4 × NR` still carries enough independent
/// accumulation chains to cover FP-add/FMA latency.
pub const MR: usize = 4;
/// Columns per register tile: a 4×16 tile (eight 256-bit accumulator
/// chains) on AVX2/AVX-512 targets, 4×8 (eight XMM chains) on the SSE2
/// baseline.
pub const NR: usize = if WIDE_SIMD { 16 } else { 8 };
/// `k`-block size: one packed `A` micro-panel (`MR × KC` f32) stays well
/// inside L1 while a `B` panel block streams through L2.
pub const KC: usize = 256;

/// Operand memory layout for the packing routines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Layout {
    /// The operand is stored exactly as the product consumes it.
    RowMajor,
    /// The operand is stored transposed (the caller holds `Mᵀ`).
    Transposed,
}

/// `c += a · b` for row-major `a (m×k)`, `b (k×n)`, `c (m×n)`.
///
/// # Panics
///
/// Panics if slice lengths do not match the shape arguments.
pub fn gemm_nn(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
    scratch: &mut Scratch,
) {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(b.len(), k * n, "rhs length");
    gemm_dispatch(a, Layout::RowMajor, b, Layout::RowMajor, c, m, k, n, threads, scratch);
}

/// `c += a · bᵗᵀ` for row-major `a (m×k)` and `bt (n×k)` — i.e. the
/// caller holds the right operand transposed, as `Linear`/`Conv2d`
/// forward passes do (`y = x · Wᵀ` with `W` stored `(out, in)`).
///
/// # Panics
///
/// Panics if slice lengths do not match the shape arguments.
pub fn gemm_nt(
    a: &[f32],
    bt: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
    scratch: &mut Scratch,
) {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(bt.len(), n * k, "rhs length");
    gemm_dispatch(a, Layout::RowMajor, bt, Layout::Transposed, c, m, k, n, threads, scratch);
}

/// `c += atᵀ · b` for `at (k×m)` and row-major `b (k×n)` — the weight
/// gradient orientation of the backward passes (`dW = gᵀ · x`).
///
/// # Panics
///
/// Panics if slice lengths do not match the shape arguments.
pub fn gemm_tn(
    at: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
    scratch: &mut Scratch,
) {
    assert_eq!(at.len(), k * m, "lhs length");
    assert_eq!(b.len(), k * n, "rhs length");
    gemm_dispatch(at, Layout::Transposed, b, Layout::RowMajor, c, m, k, n, threads, scratch);
}

/// Shape-based dispatch shared by the three entry points. The chosen
/// path depends only on `(m, k, n)`, never on `threads`, so serial and
/// threaded calls always agree bitwise.
#[allow(clippy::too_many_arguments)]
fn gemm_dispatch(
    a: &[f32],
    a_layout: Layout,
    b: &[f32],
    b_layout: Layout,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
    scratch: &mut Scratch,
) {
    assert_eq!(c.len(), m * n, "out length");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        return; // nothing to accumulate
    }
    if rdo_obs::enabled() {
        rdo_obs::counter_add("tensor.gemm.calls", 1);
        rdo_obs::counter_add("tensor.gemm.flops", 2 * (m * k * n) as u64);
    }
    let threads = threads.clamp(1, m.max(1));
    match (m, k, n) {
        (1, _, _) => gevm(a, a_layout, b, b_layout, c, k, n, threads),
        (_, _, 1) => gemv(a, a_layout, b, b_layout, c, m, k, threads),
        (_, 1, _) => rank1(a, a_layout, b, b_layout, c, m, n, threads),
        _ => gemm_tiled(a, a_layout, b, b_layout, c, m, k, n, threads, scratch),
    }
}

/// Number of `NR`-column panels covering `n` columns.
fn panels(n: usize) -> usize {
    n.div_ceil(NR)
}

/// Packs `B` into column panels: for each `KC` block `k0` and panel `j`,
/// the `kc × NR` sub-block lives at `k0 * n_pad + j * (kc * NR)`,
/// element `(p, jj)` at offset `p * NR + jj`, zero-padded past column `n`.
fn pack_b(b: &[f32], layout: Layout, k: usize, n: usize, bpack: &mut [f32]) {
    let n_pad = panels(n) * NR;
    debug_assert_eq!(bpack.len(), k * n_pad);
    let mut k0 = 0;
    while k0 < k {
        let kc = KC.min(k - k0);
        let block = &mut bpack[k0 * n_pad..k0 * n_pad + kc * n_pad];
        for jp in 0..panels(n) {
            let j0 = jp * NR;
            let width = NR.min(n - j0);
            let panel = &mut block[jp * kc * NR..(jp + 1) * kc * NR];
            match layout {
                Layout::RowMajor => {
                    for (p, dst) in panel.chunks_exact_mut(NR).enumerate() {
                        let src = &b[(k0 + p) * n + j0..(k0 + p) * n + j0 + width];
                        dst[..width].copy_from_slice(src);
                        dst[width..].fill(0.0);
                    }
                }
                Layout::Transposed => {
                    // b holds Bᵀ as (n × k): column j of B is row j of b.
                    // Read each row contiguously, scatter into the panel
                    // (the panel itself stays L1-resident).
                    if width < NR {
                        panel.fill(0.0);
                    }
                    for jj in 0..width {
                        let src = &b[(j0 + jj) * k + k0..(j0 + jj) * k + k0 + kc];
                        for (p, &v) in src.iter().enumerate() {
                            panel[p * NR + jj] = v;
                        }
                    }
                }
            }
        }
        k0 += kc;
    }
}

/// Packs the `A` rows `rows.start..rows.end` of `k`-block `k0..k0+kc`
/// into `MR`-row micro-panels: tile `t` (anchored at absolute row
/// `rows.start + t·MR`) occupies `t * (MR * kc)`, element `(p, i)` at
/// `p * MR + i`, zero-padded past the last row.
fn pack_a_block(
    a: &[f32],
    layout: Layout,
    m: usize,
    k: usize,
    rows: core::ops::Range<usize>,
    k0: usize,
    kc: usize,
    apack: &mut [f32],
) {
    let tiles = (rows.end - rows.start).div_ceil(MR);
    debug_assert_eq!(apack.len(), tiles * MR * kc);
    for t in 0..tiles {
        let i0 = rows.start + t * MR;
        let height = MR.min(rows.end - i0);
        let panel = &mut apack[t * MR * kc..(t + 1) * MR * kc];
        match layout {
            Layout::RowMajor => {
                // read each source row contiguously, scatter into the
                // (L1-resident) micro-panel
                if height < MR {
                    panel.fill(0.0);
                }
                for i in 0..height {
                    let src = &a[(i0 + i) * k + k0..(i0 + i) * k + k0 + kc];
                    for (p, &v) in src.iter().enumerate() {
                        panel[p * MR + i] = v;
                    }
                }
            }
            Layout::Transposed => {
                // a holds Aᵀ as (k × m): row p of the block is contiguous
                for (p, dst) in panel.chunks_exact_mut(MR).enumerate() {
                    let src = &a[(k0 + p) * m + i0..(k0 + p) * m + i0 + height];
                    dst[..height].copy_from_slice(src);
                    dst[height..].fill(0.0);
                }
            }
        }
    }
}

/// The register tile: accumulates `MR × NR` products over one packed
/// `kc`-deep micro-panel pair. Fixed-size arrays and exact chunking let
/// the compiler keep `acc` in vector registers.
#[inline]
fn micro_tile(apanel: &[f32], bpanel: &[f32], kc: usize) -> [[f32; NR]; MR] {
    let mut acc = [[0.0f32; NR]; MR];
    for (ap, bp) in apanel.chunks_exact(MR).zip(bpanel.chunks_exact(NR)).take(kc) {
        let b: &[f32; NR] = bp.try_into().expect("exact NR chunk");
        let a: &[f32; MR] = ap.try_into().expect("exact MR chunk");
        for i in 0..MR {
            let ai = a[i];
            for j in 0..NR {
                acc[i][j] += ai * b[j];
            }
        }
    }
    acc
}

/// [`micro_tile`] reading `B` straight from the caller's row-major matrix
/// (leading dimension `n`) instead of a packed panel. Step `p` multiplies
/// exactly the values `B[(k0+p) * n + j0 ..][..NR]` that [`pack_b`] would
/// have copied into panel offset `p * NR`, in the same ascending-`k`
/// order, so the accumulators match the packed path bit for bit.
#[inline]
fn micro_tile_direct(
    apanel: &[f32],
    b: &[f32],
    n: usize,
    k0: usize,
    j0: usize,
    kc: usize,
) -> [[f32; NR]; MR] {
    let mut acc = [[0.0f32; NR]; MR];
    for (p, ap) in apanel.chunks_exact(MR).take(kc).enumerate() {
        let brow = &b[(k0 + p) * n + j0..(k0 + p) * n + j0 + NR];
        let bv: &[f32; NR] = brow.try_into().expect("exact NR chunk");
        let a: &[f32; MR] = ap.try_into().expect("exact MR chunk");
        for i in 0..MR {
            let ai = a[i];
            for j in 0..NR {
                acc[i][j] += ai * bv[j];
            }
        }
    }
    acc
}

/// How [`gemm_rows`] reads the right-hand operand.
#[derive(Clone, Copy)]
enum BSource<'a> {
    /// `B` repacked into `NR`-column panels by [`pack_b`].
    Packed(&'a [f32]),
    /// `B` read in place from the caller's row-major storage — only legal
    /// when `n` is a whole number of `NR` panels (no zero-padded columns).
    Direct(&'a [f32]),
}

/// Row-major `B` operands up to this many elements skip [`pack_b`] and
/// stream straight from the source matrix: below it the whole matrix
/// stays cache-resident across row tiles, so packing is pure copy
/// overhead (it dominates the runtime of the small-batch products the
/// PWT tuning loop issues). Larger operands keep the packed layout for
/// its contiguity. Purely a throughput knob — both paths multiply the
/// same values in the same order.
const DIRECT_B_MAX: usize = 1 << 16;

/// Computes the tiles covering `c_rows` (a contiguous row range starting
/// at absolute row `r0`, tile grid anchored at row 0 of the full
/// product). One invocation per worker; also called directly when
/// serial.
#[allow(clippy::too_many_arguments)]
fn gemm_rows(
    a: &[f32],
    a_layout: Layout,
    bsrc: BSource<'_>,
    c_rows: &mut [f32],
    r0: usize,
    m: usize,
    k: usize,
    n: usize,
    apack: &mut [f32],
) {
    let rows = c_rows.len() / n;
    let n_panels = panels(n);
    let n_pad = n_panels * NR;
    let tiles = rows.div_ceil(MR);
    let mut k0 = 0;
    while k0 < k {
        let kc = KC.min(k - k0);
        pack_a_block(a, a_layout, m, k, r0..r0 + rows, k0, kc, &mut apack[..tiles * MR * kc]);
        for jp in 0..n_panels {
            let j0 = jp * NR;
            let width = NR.min(n - j0);
            for t in 0..tiles {
                let i0 = t * MR;
                let height = MR.min(rows - i0);
                let apanel = &apack[t * MR * kc..(t + 1) * MR * kc];
                let acc = match bsrc {
                    BSource::Packed(bpack) => {
                        let bblock = &bpack[k0 * n_pad..k0 * n_pad + kc * n_pad];
                        micro_tile(apanel, &bblock[jp * kc * NR..(jp + 1) * kc * NR], kc)
                    }
                    BSource::Direct(b) => micro_tile_direct(apanel, b, n, k0, j0, kc),
                };
                for (i, acc_row) in acc.iter().enumerate().take(height) {
                    let crow = &mut c_rows[(i0 + i) * n + j0..(i0 + i) * n + j0 + width];
                    for (cv, av) in crow.iter_mut().zip(acc_row) {
                        *cv += av;
                    }
                }
            }
        }
        k0 += kc;
    }
}

/// The general tiled path: pack `B` once (unless a small row-major `B`
/// can be read in place), then partition the output rows into
/// whole-`MR`-tile chunks across workers.
#[allow(clippy::too_many_arguments)]
fn gemm_tiled(
    a: &[f32],
    a_layout: Layout,
    b: &[f32],
    b_layout: Layout,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
    scratch: &mut Scratch,
) {
    let direct_b = b_layout == Layout::RowMajor && n.is_multiple_of(NR) && k * n <= DIRECT_B_MAX;
    let mut bpack = if direct_b {
        Vec::new()
    } else {
        let n_pad = panels(n) * NR;
        let mut buf = scratch.take(k * n_pad);
        pack_b(b, b_layout, k, n, &mut buf);
        buf
    };
    let bsrc = if direct_b { BSource::Direct(b) } else { BSource::Packed(&bpack) };

    let tiles = m.div_ceil(MR);
    if rdo_obs::enabled() {
        rdo_obs::counter_add("tensor.gemm.tiles", (tiles * panels(n)) as u64);
    }
    let threads = threads.min(tiles);
    let tiles_per = tiles.div_ceil(threads);
    let rows_per = tiles_per * MR;
    let kc_max = KC.min(k);

    if threads <= 1 {
        let mut apack = scratch.take(tiles * MR * kc_max);
        gemm_rows(a, a_layout, bsrc, c, 0, m, k, n, &mut apack);
        scratch.recycle(apack);
    } else {
        // one shard per contiguous whole-tile row chunk; each shard owns
        // its (chunk, packing buffer) pair behind an uncontended mutex
        let shards: Vec<Mutex<(&mut [f32], Vec<f32>)>> = c
            .chunks_mut(rows_per * n)
            .map(|chunk| Mutex::new((chunk, scratch.take(tiles_per * MR * kc_max))))
            .collect();
        pool::run(shards.len(), |t| {
            let mut shard = shards[t].lock().expect("gemm shard poisoned");
            let (c_chunk, apack) = &mut *shard;
            gemm_rows(a, a_layout, bsrc, c_chunk, t * rows_per, m, k, n, apack);
        });
        for shard in shards {
            let (_, apack) = shard.into_inner().expect("gemm shard poisoned");
            scratch.recycle(apack);
        }
    }
    if !direct_b {
        let pack = std::mem::take(&mut bpack);
        scratch.recycle(pack);
    }
}

/// A left operand packed once into `MR`-row micro-panels for reuse
/// across many products — e.g. the evaluation dataset of a fig. 5 sweep,
/// whose input panels are invariant across programming cycles while only
/// the programmed weights change.
///
/// The layout replicates exactly what [`pack_a_block`] produces when a
/// fresh pack covers rows `0..m`: for each `KC` block `k0`, tile `t`
/// (anchored at absolute row `t·MR`) lives at
/// `tiles_all · MR · k0 + t · (MR · kc)`, element `(p, i)` at
/// `p · MR + i`, zero-padded past row `m`. Because the threaded tiled
/// path partitions rows into whole-`MR`-tile chunks anchored at row 0, a
/// worker's tiles are a contiguous subrange of this pack holding exactly
/// the bytes its per-call [`pack_a_block`] would have written — which is
/// why [`gemm_nt_prepacked`] is bitwise identical to [`gemm_nt`] at
/// every thread count.
///
/// The raw row-major operand is retained alongside the panels so the
/// degenerate shapes (`m == 1`, `k == 1`, `n == 1`) can take the exact
/// same vector-kernel dispatch as [`gemm_nt`].
#[derive(Debug, Clone)]
pub struct PackedA {
    /// Micro-panel data, `tiles_all · MR · k` elements.
    data: Vec<f32>,
    /// The original row-major operand (`m · k` elements).
    raw: Vec<f32>,
    m: usize,
    k: usize,
}

impl PackedA {
    /// Packs row-major `a (m×k)` once for repeated [`gemm_nt_prepacked`]
    /// products.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != m * k`.
    pub fn pack(a: &[f32], m: usize, k: usize) -> Self {
        assert_eq!(a.len(), m * k, "lhs length");
        let tiles_all = m.div_ceil(MR);
        let mut data = vec![0.0f32; tiles_all * MR * k];
        let mut k0 = 0;
        while k0 < k {
            let kc = KC.min(k - k0);
            let off = tiles_all * MR * k0;
            pack_a_block(
                a,
                Layout::RowMajor,
                m,
                k,
                0..m,
                k0,
                kc,
                &mut data[off..off + tiles_all * MR * kc],
            );
            k0 += kc;
        }
        Self { data, raw: a.to_vec(), m, k }
    }

    /// Number of rows of the packed operand.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of columns (the shared/contraction dimension).
    pub fn k(&self) -> usize {
        self.k
    }

    /// The original row-major operand the pack was built from.
    pub fn raw(&self) -> &[f32] {
        &self.raw
    }
}

/// [`gemm_rows`] reading `A` micro-panels from a [`PackedA`] instead of
/// packing per call. `r0` must be a whole number of `MR` tiles (the
/// threaded partition guarantees this; the serial call passes 0).
fn gemm_rows_prepacked(
    pa: &PackedA,
    bsrc: BSource<'_>,
    c_rows: &mut [f32],
    r0: usize,
    k: usize,
    n: usize,
) {
    debug_assert!(r0.is_multiple_of(MR), "chunks are whole-tile aligned");
    let rows = c_rows.len() / n;
    let n_panels = panels(n);
    let n_pad = n_panels * NR;
    let tiles = rows.div_ceil(MR);
    let tiles_all = pa.m.div_ceil(MR);
    let t_base = r0 / MR;
    let mut k0 = 0;
    while k0 < k {
        let kc = KC.min(k - k0);
        let block_off = tiles_all * MR * k0;
        for jp in 0..n_panels {
            let j0 = jp * NR;
            let width = NR.min(n - j0);
            for t in 0..tiles {
                let i0 = t * MR;
                let height = MR.min(rows - i0);
                let panel_off = block_off + (t_base + t) * MR * kc;
                let apanel = &pa.data[panel_off..panel_off + MR * kc];
                let acc = match bsrc {
                    BSource::Packed(bpack) => {
                        let bblock = &bpack[k0 * n_pad..k0 * n_pad + kc * n_pad];
                        micro_tile(apanel, &bblock[jp * kc * NR..(jp + 1) * kc * NR], kc)
                    }
                    BSource::Direct(b) => micro_tile_direct(apanel, b, n, k0, j0, kc),
                };
                for (i, acc_row) in acc.iter().enumerate().take(height) {
                    let crow = &mut c_rows[(i0 + i) * n + j0..(i0 + i) * n + j0 + width];
                    for (cv, av) in crow.iter_mut().zip(acc_row) {
                        *cv += av;
                    }
                }
            }
        }
        k0 += kc;
    }
}

/// `c += Aᵖ · bᵗᵀ` where `Aᵖ` is a [`PackedA`] — the reuse variant of
/// [`gemm_nt`]: the `A` micro-panels are read straight from the pack, so
/// repeated products against changing weights skip the per-call
/// [`pack_a_block`] copies. Bitwise identical to [`gemm_nt`] on the raw
/// operand at every thread count (same dispatch, same tile partition,
/// same accumulation order).
///
/// # Panics
///
/// Panics if slice lengths do not match the shape arguments.
pub fn gemm_nt_prepacked(
    pa: &PackedA,
    bt: &[f32],
    c: &mut [f32],
    n: usize,
    threads: usize,
    scratch: &mut Scratch,
) {
    let (m, k) = (pa.m, pa.k);
    assert_eq!(bt.len(), n * k, "rhs length");
    assert_eq!(c.len(), m * n, "out length");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if m == 1 || k == 1 || n == 1 {
        // the vector-kernel shapes never touch the micro-panels; take the
        // exact gemm_nt dispatch on the retained raw operand
        gemm_nt(&pa.raw, bt, c, m, k, n, threads, scratch);
        return;
    }
    if rdo_obs::enabled() {
        rdo_obs::counter_add("tensor.gemm.calls", 1);
        rdo_obs::counter_add("tensor.gemm.flops", 2 * (m * k * n) as u64);
        rdo_obs::counter_add("tensor.gemm.prepacked_calls", 1);
    }
    // B handling mirrors gemm_tiled: a transposed operand is always
    // packed (the direct path is row-major-only).
    let n_pad = panels(n) * NR;
    let mut bpack = scratch.take(k * n_pad);
    pack_b(bt, Layout::Transposed, k, n, &mut bpack);
    let bsrc = BSource::Packed(&bpack);

    let tiles = m.div_ceil(MR);
    if rdo_obs::enabled() {
        rdo_obs::counter_add("tensor.gemm.tiles", (tiles * panels(n)) as u64);
    }
    let threads = threads.clamp(1, m).min(tiles);
    let tiles_per = tiles.div_ceil(threads);
    let rows_per = tiles_per * MR;

    if threads <= 1 {
        gemm_rows_prepacked(pa, bsrc, c, 0, k, n);
    } else {
        let shards: Vec<Mutex<&mut [f32]>> = c.chunks_mut(rows_per * n).map(Mutex::new).collect();
        pool::run(shards.len(), |t| {
            let mut chunk = shards[t].lock().expect("gemm shard poisoned");
            gemm_rows_prepacked(pa, bsrc, &mut chunk[..], t * rows_per, k, n);
        });
    }
    let pack = bpack;
    scratch.recycle(pack);
}

/// Lane count of the blocked reductions in the vector kernels.
const LANES: usize = 8;

/// Lane-blocked dot product with a fixed reduction tree — the same
/// operation order for a given length however the caller threads.
#[inline]
fn dot(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len());
    let mut lanes = [0.0f32; LANES];
    let xc = x.chunks_exact(LANES);
    let yc = y.chunks_exact(LANES);
    let tail: f32 =
        xc.remainder().iter().zip(yc.remainder()).fold(0.0, |acc, (&a, &b)| acc + a * b);
    for (xv, yv) in xc.zip(yc) {
        for l in 0..LANES {
            lanes[l] += xv[l] * yv[l];
        }
    }
    let mut half = LANES / 2;
    while half > 0 {
        for l in 0..half {
            lanes[l] += lanes[l + half];
        }
        half /= 2;
    }
    lanes[0] + tail
}

/// `m == 1` path: `c (n) += x (k) · B (k×n)` — the crossbar VMM
/// orientation. Workers split the output columns; every column `j` is
/// accumulated in ascending `i`, so partitioning never reorders math.
fn gevm(
    x: &[f32],
    x_layout: Layout,
    b: &[f32],
    b_layout: Layout,
    c: &mut [f32],
    k: usize,
    n: usize,
    threads: usize,
) {
    // a 1×k operand is identical in both layouts
    let _ = x_layout;
    if let Layout::Transposed = b_layout {
        // B is stored (n × k): each output is a dot product of rows
        gemv(b, Layout::RowMajor, x, Layout::RowMajor, c, n, k, threads);
        return;
    }
    let threads = threads.clamp(1, n);
    let cols_per = n.div_ceil(threads);
    let run = |c_cols: &mut [f32], j0: usize| {
        let width = c_cols.len();
        for (i, &xv) in x.iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            let brow = &b[i * n + j0..i * n + j0 + width];
            for (cv, &bv) in c_cols.iter_mut().zip(brow) {
                *cv += xv * bv;
            }
        }
    };
    if threads <= 1 {
        run(c, 0);
        return;
    }
    let shards: Vec<Mutex<&mut [f32]>> = c.chunks_mut(cols_per).map(Mutex::new).collect();
    pool::run(shards.len(), |t| {
        let mut chunk = shards[t].lock().expect("gevm shard poisoned");
        run(&mut chunk[..], t * cols_per);
    });
}

/// `n == 1` path: `c (m) += A (m×k) · x (k)` — per-row dot products,
/// workers split the rows.
fn gemv(
    a: &[f32],
    a_layout: Layout,
    x: &[f32],
    x_layout: Layout,
    c: &mut [f32],
    m: usize,
    k: usize,
    threads: usize,
) {
    let _ = x_layout; // a k×1 operand is identical in both layouts
    if let Layout::Transposed = a_layout {
        // A is stored (k × m): the product is x · At in gevm orientation
        gevm(x, Layout::RowMajor, a, Layout::RowMajor, c, k, m, threads);
        return;
    }
    let threads = threads.clamp(1, m);
    let rows_per = m.div_ceil(threads);
    let run = |c_rows: &mut [f32], r0: usize| {
        for (i, cv) in c_rows.iter_mut().enumerate() {
            let row = &a[(r0 + i) * k..(r0 + i + 1) * k];
            *cv += dot(row, x);
        }
    };
    if threads <= 1 {
        run(c, 0);
        return;
    }
    let shards: Vec<Mutex<&mut [f32]>> = c.chunks_mut(rows_per).map(Mutex::new).collect();
    pool::run(shards.len(), |t| {
        let mut chunk = shards[t].lock().expect("gemv shard poisoned");
        run(&mut chunk[..], t * rows_per);
    });
}

/// `k == 1` path: the rank-1 update `c (m×n) += a (m) ⊗ b (n)`, workers
/// split the rows.
fn rank1(
    a: &[f32],
    a_layout: Layout,
    b: &[f32],
    b_layout: Layout,
    c: &mut [f32],
    m: usize,
    n: usize,
    threads: usize,
) {
    // k == 1 operands are vectors; layout is irrelevant
    let _ = (a_layout, b_layout);
    let threads = threads.clamp(1, m);
    let rows_per = m.div_ceil(threads);
    let run = |c_rows: &mut [f32], r0: usize| {
        for (i, crow) in c_rows.chunks_exact_mut(n).enumerate() {
            let av = a[r0 + i];
            if av == 0.0 {
                continue;
            }
            for (cv, &bv) in crow.iter_mut().zip(b) {
                *cv += av * bv;
            }
        }
    };
    if threads <= 1 {
        run(c, 0);
        return;
    }
    let shards: Vec<Mutex<&mut [f32]>> = c.chunks_mut(rows_per * n).map(Mutex::new).collect();
    pool::run(shards.len(), |t| {
        let mut chunk = shards[t].lock().expect("rank1 shard poisoned");
        run(&mut chunk[..], t * rows_per);
    });
}

/// `f64` column accumulation `c (n) += Σᵢ x[i] · B[i·n + j]` shared with
/// the RRAM bit-line current model (`Crossbar::bitline_currents`), where
/// conductances are `f64`. Serial by design — the ADC path is called per
/// wordline group inside already-parallel cycle evaluation.
pub fn gevm_into_f64(x: &[f32], b: &[f64], c: &mut [f64], m: usize, n: usize) {
    assert_eq!(x.len(), m, "input length");
    assert_eq!(b.len(), m * n, "matrix length");
    assert_eq!(c.len(), n, "output length");
    for (i, &xv) in x.iter().enumerate() {
        if xv == 0.0 {
            continue;
        }
        let xv = f64::from(xv);
        let brow = &b[i * n..(i + 1) * n];
        for (cv, &bv) in c.iter_mut().zip(brow) {
            *cv += xv * bv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, seed: u64) -> Vec<f32> {
        (0..len).map(|i| ((i as u64).wrapping_mul(seed) % 23) as f32 * 0.37 - 4.0).collect()
    }

    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64; // f64 reference accumulator
                for p in 0..k {
                    acc += f64::from(a[i * k + p]) * f64::from(b[p * n + j]);
                }
                c[i * n + j] = acc as f32;
            }
        }
        c
    }

    fn assert_close(got: &[f32], want: &[f32], tol: f32) {
        for (x, y) in got.iter().zip(want) {
            assert!((x - y).abs() <= tol * y.abs().max(1.0), "{x} vs {y}");
        }
    }

    #[test]
    fn tiled_matches_naive_across_tile_boundaries() {
        // m, n straddle MR/NR multiples; k straddles the KC block size
        for &(m, k, n) in
            &[(1, 1, 1), (3, 5, 7), (MR, KC, NR), (MR + 1, KC + 3, NR + 1), (17, 70, 33)]
        {
            let a = fill(m * k, 7919);
            let b = fill(k * n, 104729);
            let mut c = vec![0.0f32; m * n];
            let mut s = Scratch::new();
            gemm_nn(&a, &b, &mut c, m, k, n, 1, &mut s);
            assert_close(&c, &naive(&a, &b, m, k, n), 1e-4);
        }
    }

    #[test]
    fn direct_b_read_is_bitwise_packed() {
        // `n` a whole number of NR panels and `k·n` under DIRECT_B_MAX, so
        // gemm_nn streams B in place; the NT call on the explicitly
        // transposed operand always packs. Exact equality proves the
        // in-place read multiplies the same values in the same order,
        // including across the KC block boundary.
        for &(m, k, n) in &[(4, 128, NR * 8), (9, KC + 3, NR), (33, 40, NR * 2)] {
            assert!(
                k * n <= DIRECT_B_MAX && n.is_multiple_of(NR),
                "case must take the direct path"
            );
            let a = fill(m * k, 43);
            let b = fill(k * n, 71);
            let mut s = Scratch::new();
            let mut c_direct = vec![0.0f32; m * n];
            gemm_nn(&a, &b, &mut c_direct, m, k, n, 1, &mut s);

            let mut bt = vec![0.0f32; n * k];
            for p in 0..k {
                for j in 0..n {
                    bt[j * k + p] = b[p * n + j];
                }
            }
            let mut c_packed = vec![0.0f32; m * n];
            gemm_nt(&a, &bt, &mut c_packed, m, k, n, 1, &mut s);
            assert_eq!(c_direct, c_packed, "({m},{k},{n})");
        }
    }

    #[test]
    fn nt_and_tn_match_nn() {
        let (m, k, n) = (9, 21, 13);
        let a = fill(m * k, 31);
        let b = fill(k * n, 57);
        let mut s = Scratch::new();
        let mut c_nn = vec![0.0f32; m * n];
        gemm_nn(&a, &b, &mut c_nn, m, k, n, 1, &mut s);

        // bt = Bᵀ stored (n × k)
        let mut bt = vec![0.0f32; n * k];
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        let mut c_nt = vec![0.0f32; m * n];
        gemm_nt(&a, &bt, &mut c_nt, m, k, n, 1, &mut s);
        assert_eq!(c_nn, c_nt, "NT packing must not change values");

        // at = Aᵀ stored (k × m)
        let mut at = vec![0.0f32; k * m];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        let mut c_tn = vec![0.0f32; m * n];
        gemm_tn(&at, &b, &mut c_tn, m, k, n, 1, &mut s);
        assert_eq!(c_nn, c_tn, "TN packing must not change values");
    }

    #[test]
    fn threaded_is_bitwise_serial_all_paths() {
        // general tile path, gevm (m=1), gemv (n=1) and rank-1 (k=1)
        for &(m, k, n) in &[(23, 37, 19), (1, 40, 33), (29, 40, 1), (21, 1, 18)] {
            let a = fill(m * k, 11);
            let b = fill(k * n, 13);
            let mut serial = vec![0.5f32; m * n];
            let mut s = Scratch::new();
            gemm_nn(&a, &b, &mut serial, m, k, n, 1, &mut s);
            for threads in [2, 3, 8, 64] {
                let mut par = vec![0.5f32; m * n];
                gemm_nn(&a, &b, &mut par, m, k, n, threads, &mut s);
                assert_eq!(par, serial, "({m},{k},{n}) threads={threads}");
            }
        }
    }

    #[test]
    fn accumulates_into_existing_output() {
        let (m, k, n) = (6, 10, 8);
        let a = fill(m * k, 3);
        let b = fill(k * n, 5);
        let mut s = Scratch::new();
        let mut base = vec![0.0f32; m * n];
        gemm_nn(&a, &b, &mut base, m, k, n, 1, &mut s);
        let mut acc = vec![2.0f32; m * n];
        gemm_nn(&a, &b, &mut acc, m, k, n, 1, &mut s);
        for (x, y) in acc.iter().zip(&base) {
            assert!((x - (y + 2.0)).abs() < 1e-5);
        }
    }

    #[test]
    fn degenerate_shapes_are_no_ops() {
        let mut s = Scratch::new();
        let mut c = vec![7.0f32; 6];
        gemm_nn(&[], &[], &mut c, 2, 0, 3, 4, &mut s); // k == 0
        assert_eq!(c, vec![7.0; 6]);
        gemm_nn(&[], &[], &mut [], 0, 3, 0, 4, &mut s); // m == n == 0
    }

    #[test]
    fn scratch_is_reused_across_calls() {
        let (m, k, n) = (32, 48, 24);
        let a = fill(m * k, 17);
        let b = fill(k * n, 19);
        let mut s = Scratch::new();
        let mut c = vec![0.0f32; m * n];
        gemm_nn(&a, &b, &mut c, m, k, n, 1, &mut s);
        let warm = s.pooled_capacity();
        assert!(warm > 0, "gemm should have pooled its packing buffers");
        c.fill(0.0);
        gemm_nn(&a, &b, &mut c, m, k, n, 1, &mut s);
        assert_eq!(s.pooled_capacity(), warm, "steady state must not grow the pool");
    }

    #[test]
    fn prepacked_is_bitwise_gemm_nt_every_thread_count() {
        // tile path plus every degenerate dispatch, across KC/MR/NR
        // boundaries; the pack is built once and reused for all counts
        for &(m, k, n) in &[
            (23, 37, 19),
            (MR + 1, KC + 3, NR + 1),
            (64, 128, 32),
            (1, 40, 33),
            (29, 40, 1),
            (21, 1, 18),
        ] {
            let a = fill(m * k, 101);
            let bt = fill(n * k, 103);
            let pa = PackedA::pack(&a, m, k);
            assert_eq!((pa.m(), pa.k()), (m, k));
            assert_eq!(pa.raw(), &a[..]);
            let mut s = Scratch::new();
            for threads in [1, 2, 3, 8, 64] {
                let mut c_ref = vec![0.25f32; m * n];
                gemm_nt(&a, &bt, &mut c_ref, m, k, n, threads, &mut s);
                let mut c_pre = vec![0.25f32; m * n];
                gemm_nt_prepacked(&pa, &bt, &mut c_pre, n, threads, &mut s);
                assert_eq!(c_pre, c_ref, "({m},{k},{n}) threads={threads}");
            }
        }
    }

    #[test]
    fn prepacked_reuse_across_changing_weights() {
        // the sweep usage pattern: one pack, many different right operands
        let (m, k, n) = (48, 70, 24);
        let a = fill(m * k, 7);
        let pa = PackedA::pack(&a, m, k);
        let mut s = Scratch::new();
        for seed in [11, 13, 17] {
            let bt = fill(n * k, seed);
            let mut c_ref = vec![0.0f32; m * n];
            gemm_nt(&a, &bt, &mut c_ref, m, k, n, 4, &mut s);
            let mut c_pre = vec![0.0f32; m * n];
            gemm_nt_prepacked(&pa, &bt, &mut c_pre, n, 4, &mut s);
            assert_eq!(c_pre, c_ref, "seed={seed}");
        }
    }

    #[test]
    fn f64_gevm_matches_reference() {
        let (m, n) = (13, 9);
        let x: Vec<f32> = (0..m).map(|i| (i % 5) as f32 - 2.0).collect();
        let b: Vec<f64> = (0..m * n).map(|i| (i % 7) as f64 * 0.25).collect();
        let mut c = vec![0.0f64; n];
        gevm_into_f64(&x, &b, &mut c, m, n);
        for (j, cv) in c.iter().enumerate() {
            let want: f64 = (0..m).map(|i| f64::from(x[i]) * b[i * n + j]).sum();
            assert!((cv - want).abs() < 1e-12, "{cv} vs {want}");
        }
    }
}
