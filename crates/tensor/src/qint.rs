//! Integer kernel family for the quantized datapath.
//!
//! The paper's accelerator is integer end to end: 8-bit weights are
//! bit-sliced onto cells, inputs are fed bit-serially, and the digital
//! offset is an exact integer correction. This module supplies the
//! matching kernels so the simulator's quantized hot paths can run in
//! native integer arithmetic instead of f32/f64:
//!
//! * [`gemm_i8_i32`] / [`gemv_i8_i32`] — dense i8×i8→i32 products with
//!   the workspace threading contract. Integer addition is associative,
//!   so serial and threaded runs are **exactly** equal (not just
//!   bitwise-under-one-order): threads only choose who computes a row.
//! * [`BitPlanes`] / [`ColumnPlanes`] — `u64`-lane bit-plane packing:
//!   one plane per value bit, rows packed 64 per word. A bit-serial
//!   wordline drive is then a plane slice, `Σxᵢ` over an activation group
//!   is [`popcount_range`], and a bitline accumulation is an AND +
//!   popcount per stored-value bit ([`and_popcount_range`],
//!   [`dot_planes_range`]) — the digital twin of what the crossbar
//!   periphery actually computes.
//!
//! All kernels are safe Rust; the `u64` popcount lanes are the integer
//! analogue of the f32 SIMD lanes in [`crate::microkernel`].

use crate::error::{Result, TensorError};

/// Bits per packed lane word.
const WORD_BITS: usize = 64;

/// Validates a plane bit width.
fn check_bits(bits: u32) -> Result<()> {
    if bits == 0 || bits > 32 {
        return Err(TensorError::InvalidArgument(format!(
            "bit-plane width must be 1..=32, got {bits}"
        )));
    }
    Ok(())
}

/// Validates that `v` fits in `bits` bits.
fn check_value(v: u32, bits: u32) -> Result<()> {
    if bits < 32 && v >= (1u32 << bits) {
        return Err(TensorError::InvalidArgument(format!("value {v} does not fit {bits} bits")));
    }
    Ok(())
}

/// A vector of `len` unsigned integers packed as one `u64`-lane plane per
/// bit: plane `b` holds bit `b` of every element, element `i` at bit
/// `i % 64` of word `i / 64`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitPlanes {
    bits: u32,
    len: usize,
    words: usize,
    /// `bits` planes of `words` words each, plane-major.
    planes: Vec<u64>,
}

impl BitPlanes {
    /// Packs `values` into `bits` planes.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `bits` is outside
    /// `1..=32` or any value does not fit `bits` bits.
    pub fn pack(values: &[u32], bits: u32) -> Result<Self> {
        check_bits(bits)?;
        let len = values.len();
        let words = len.div_ceil(WORD_BITS);
        let mut planes = vec![0u64; bits as usize * words];
        for (i, &v) in values.iter().enumerate() {
            check_value(v, bits)?;
            let (w, sh) = (i / WORD_BITS, i % WORD_BITS);
            for b in 0..bits {
                planes[b as usize * words + w] |= u64::from((v >> b) & 1) << sh;
            }
        }
        if rdo_obs::enabled() {
            rdo_obs::counter_add("tensor.qint.pack.words", planes.len() as u64);
        }
        Ok(BitPlanes { bits, len, words, planes })
    }

    /// Reassembles the packed values (the round-trip inverse of
    /// [`BitPlanes::pack`]).
    pub fn unpack(&self) -> Vec<u32> {
        (0..self.len)
            .map(|i| {
                let (w, sh) = (i / WORD_BITS, i % WORD_BITS);
                (0..self.bits).fold(0u32, |v, b| {
                    v | ((((self.planes[b as usize * self.words + w] >> sh) & 1) as u32) << b)
                })
            })
            .collect()
    }

    /// The plane of one bit, `words_per_plane()` words long.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= bits()`.
    pub fn plane(&self, bit: u32) -> &[u64] {
        assert!(bit < self.bits, "bit {bit} out of range for {} planes", self.bits);
        &self.planes[bit as usize * self.words..(bit as usize + 1) * self.words]
    }

    /// Number of packed elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the packing holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Planes stored (the packed bit width).
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// `u64` words per plane, `⌈len / 64⌉`.
    pub fn words_per_plane(&self) -> usize {
        self.words
    }
}

/// A row-major `(rows, cols)` matrix of unsigned integers packed
/// column-wise: for every column `c` and value bit `b`, one plane holds
/// bit `b` of that column's `rows` entries, row `r` at bit `r % 64` of
/// word `r / 64` — the orientation a bitline popcount consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnPlanes {
    rows: usize,
    cols: usize,
    bits: u32,
    words: usize,
    /// Plane `(c, b)` at index `c * bits + b`, plane-major.
    planes: Vec<u64>,
}

impl ColumnPlanes {
    /// Packs a row-major `(rows, cols)` matrix into per-column planes.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `bits` is outside
    /// `1..=32`, the slice length is not `rows · cols`, or any value does
    /// not fit `bits` bits.
    pub fn pack(values: &[u32], rows: usize, cols: usize, bits: u32) -> Result<Self> {
        check_bits(bits)?;
        if values.len() != rows * cols {
            return Err(TensorError::InvalidArgument(format!(
                "{} values cannot fill a {rows}×{cols} matrix",
                values.len()
            )));
        }
        let words = rows.div_ceil(WORD_BITS);
        let mut planes = vec![0u64; cols * bits as usize * words];
        for r in 0..rows {
            let (w, sh) = (r / WORD_BITS, r % WORD_BITS);
            for c in 0..cols {
                let v = values[r * cols + c];
                check_value(v, bits)?;
                let base = (c * bits as usize) * words;
                for b in 0..bits {
                    planes[base + b as usize * words + w] |= u64::from((v >> b) & 1) << sh;
                }
            }
        }
        if rdo_obs::enabled() {
            rdo_obs::counter_add("tensor.qint.pack.words", planes.len() as u64);
        }
        Ok(ColumnPlanes { rows, cols, bits, words, planes })
    }

    /// The plane of column `col`, value bit `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `col >= cols()` or `bit >= bits()`.
    pub fn plane(&self, col: usize, bit: u32) -> &[u64] {
        assert!(col < self.cols && bit < self.bits, "plane ({col}, {bit}) out of range");
        let base = (col * self.bits as usize + bit as usize) * self.words;
        &self.planes[base..base + self.words]
    }

    /// Matrix rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Matrix columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Planes per column (the packed bit width).
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// `u64` words per plane, `⌈rows / 64⌉`.
    pub fn words_per_plane(&self) -> usize {
        self.words
    }
}

/// Mask selecting the bits of word `w` that fall inside element range
/// `[start, end)`. Only called for words overlapping the range, so the
/// in-word range is never empty and the shifts never reach 64.
#[inline]
fn word_mask(w: usize, start: usize, end: usize) -> u64 {
    let lo = start.saturating_sub(w * WORD_BITS);
    let hi = (end - w * WORD_BITS).min(WORD_BITS);
    debug_assert!(lo < hi && hi <= WORD_BITS);
    let top = if hi == WORD_BITS { u64::MAX } else { (1u64 << hi) - 1 };
    top & (u64::MAX << lo)
}

/// Population count of plane elements `[start, end)` — the `Σxᵢ` of a
/// bit-serial activation group, straight from `count_ones()`.
///
/// # Panics
///
/// Panics if `end` exceeds the plane's capacity or `start > end`.
pub fn popcount_range(plane: &[u64], start: usize, end: usize) -> u32 {
    assert!(start <= end && end <= plane.len() * WORD_BITS, "range {start}..{end} out of plane");
    if start == end {
        return 0;
    }
    let (w0, w1) = (start / WORD_BITS, (end - 1) / WORD_BITS);
    let mut ones = 0u32;
    for (w, &word) in plane.iter().enumerate().take(w1 + 1).skip(w0) {
        ones += (word & word_mask(w, start, end)).count_ones();
    }
    ones
}

/// Population count of `a & b` over elements `[start, end)` — one
/// bitline's contribution for one stored-value bit: how many active
/// wordlines see a 1 in that plane.
///
/// # Panics
///
/// Panics if the planes differ in length, `end` exceeds their capacity
/// or `start > end`.
pub fn and_popcount_range(a: &[u64], b: &[u64], start: usize, end: usize) -> u32 {
    assert_eq!(a.len(), b.len(), "plane lengths differ");
    assert!(start <= end && end <= a.len() * WORD_BITS, "range {start}..{end} out of plane");
    if start == end {
        return 0;
    }
    let (w0, w1) = (start / WORD_BITS, (end - 1) / WORD_BITS);
    let mut ones = 0u32;
    for w in w0..=w1 {
        ones += (a[w] & b[w] & word_mask(w, start, end)).count_ones();
    }
    ones
}

/// Population count of a whole plane — the unmasked fast path of
/// [`popcount_range`] for reads that drive every packed row at once.
/// Equal to `popcount_range(plane, 0, rows)` for planes produced by
/// [`BitPlanes::pack`]/[`ColumnPlanes::pack`], whose padding bits are
/// zero.
pub fn popcount(plane: &[u64]) -> u32 {
    plane.iter().map(|w| w.count_ones()).sum()
}

/// Population count of `a & b` over two whole planes — the unmasked fast
/// path of [`and_popcount_range`], under the same zero-padding contract
/// as [`popcount`].
///
/// # Panics
///
/// Panics if the planes differ in length.
pub fn and_popcount(a: &[u64], b: &[u64]) -> u32 {
    assert_eq!(a.len(), b.len(), "plane lengths differ");
    a.iter().zip(b).map(|(&x, &y)| (x & y).count_ones()).sum()
}

/// [`dot_planes_range`] over all packed rows, through the unmasked
/// whole-plane popcounts — the hot form of the bit-serial readout, where
/// one activation group spans the entire wordline.
///
/// # Panics
///
/// Panics if the packings disagree on element count or `col` is out of
/// range.
pub fn dot_planes(x: &BitPlanes, w: &ColumnPlanes, col: usize) -> u64 {
    assert_eq!(x.len(), w.rows(), "input length vs matrix rows");
    let mut acc = 0u64;
    for xb in 0..x.bits() {
        let xplane = x.plane(xb);
        for wb in 0..w.bits() {
            acc += u64::from(and_popcount(xplane, w.plane(col, wb))) << (xb + wb);
        }
    }
    acc
}

/// Zeroes the bits of `plane` outside element range `[start, end)` in
/// place, turning a full wordline drive into one activation group's
/// drive. After masking, whole-plane popcounts over the plane equal the
/// `*_range` forms over `[start, end)` — the masks are paid once per
/// group instead of once per word per column.
///
/// # Panics
///
/// Panics if `end` exceeds the plane's capacity or `start > end`.
pub fn mask_plane_range(plane: &mut [u64], start: usize, end: usize) {
    assert!(start <= end && end <= plane.len() * WORD_BITS, "range {start}..{end} out of plane");
    for (w, word) in plane.iter_mut().enumerate() {
        let (lo, hi) = (w * WORD_BITS, (w + 1) * WORD_BITS);
        if end <= lo || start >= hi {
            *word = 0;
        } else {
            *word &= word_mask(w, start.max(lo), end.min(hi));
        }
    }
}

/// For every column `c` of `w`, the bitline count
/// `Σ_r x[r] · w[r][c]` restricted to one activation plane:
/// `out[c] = Σ_wb 2^wb · popcount(xplane ∩ w.plane(c, wb))`.
///
/// This is the batch form of the bit-serial inner loop — one call per
/// input bit covers every bitline of the array, with the plane lookups
/// and bounds checks hoisted out of the per-column work. To read only an
/// activation group `[start, end)`, pass an `xplane` whose bits outside
/// the group are zeroed; the same zero-padding contract as [`popcount`]
/// then makes whole-plane popcounts exact.
///
/// # Panics
///
/// Panics if `xplane` is not exactly one plane long or `out` does not
/// have one slot per column.
pub fn column_counts(xplane: &[u64], w: &ColumnPlanes, out: &mut [u64]) {
    assert_eq!(xplane.len(), w.words_per_plane(), "input plane length vs matrix words");
    assert_eq!(out.len(), w.cols(), "one output slot per column");
    let words = w.words_per_plane();
    let per_col = w.bits as usize * words;
    if per_col == 0 {
        out.fill(0);
        return;
    }
    for (col_planes, ov) in w.planes.chunks_exact(per_col).zip(out.iter_mut()) {
        let mut count = 0u64;
        for (wb, plane) in col_planes.chunks_exact(words).enumerate() {
            let mut ones = 0u32;
            for (&x, &wv) in xplane.iter().zip(plane) {
                ones += (x & wv).count_ones();
            }
            count += u64::from(ones) << wb;
        }
        *ov = count;
    }
}

/// Batch form of [`dot_planes`]: for every column `c` of `w`,
/// `out[c] = Σ_xb Σ_wb 2^(xb+wb) · popcount(x.plane(xb) ∩ w.plane(c, wb))`
/// — a whole ideal-ADC bit-serial readout in one pass, with the plane
/// lookups and bounds checks hoisted out of the per-column loop.
///
/// # Panics
///
/// Panics if the packings disagree on element count or `out` does not
/// have one slot per column.
pub fn dot_planes_all(x: &BitPlanes, w: &ColumnPlanes, out: &mut [u64]) {
    assert_eq!(x.len(), w.rows(), "input length vs matrix rows");
    assert_eq!(out.len(), w.cols(), "one output slot per column");
    let words = w.words;
    let per_col = w.bits as usize * words;
    if per_col == 0 {
        out.fill(0);
        return;
    }
    let xplanes: Vec<&[u64]> = (0..x.bits()).map(|b| x.plane(b)).collect();
    for (col_planes, ov) in w.planes.chunks_exact(per_col).zip(out.iter_mut()) {
        let mut acc = 0u64;
        for (wb, plane) in col_planes.chunks_exact(words).enumerate() {
            for (xb, xplane) in xplanes.iter().enumerate() {
                let mut ones = 0u32;
                for (&xw, &ww) in xplane.iter().zip(plane) {
                    ones += (xw & ww).count_ones();
                }
                acc += u64::from(ones) << (xb + wb);
            }
        }
        *ov = acc;
    }
}

/// Exact integer dot product `Σ_{r ∈ [start, end)} x[r] · w[r][col]`
/// evaluated entirely from packed planes:
/// `Σ_xb Σ_wb 2^(xb+wb) · popcount(xplane ∩ wplane)`.
///
/// This is the full shift-and-add a bit-serial readout performs over one
/// activation group of one column, with every partial coming from a
/// popcount.
///
/// # Panics
///
/// Panics if the packings disagree on element count, `col` is out of
/// range, or the row range exceeds it.
pub fn dot_planes_range(
    x: &BitPlanes,
    w: &ColumnPlanes,
    col: usize,
    start: usize,
    end: usize,
) -> u64 {
    assert_eq!(x.len(), w.rows(), "input length vs matrix rows");
    let mut acc = 0u64;
    for xb in 0..x.bits() {
        let xplane = x.plane(xb);
        for wb in 0..w.bits() {
            let ones = and_popcount_range(xplane, w.plane(col, wb), start, end);
            acc += u64::from(ones) << (xb + wb);
        }
    }
    acc
}

/// Column blocking of the i8 GEMM inner loop: one `A` row is reduced
/// against this many `Bᵀ` rows at once, so the (already widened) `A` row
/// streams from L1 once per block instead of once per column.
const I8_COL_BLOCK: usize = 4;

/// i16 dot product with an i32 accumulator — the `vpmaddwd` shape. Both
/// operands are pre-widened from i8, so the codegen is a pure
/// multiply-add-pairs chain with no in-loop sign extension.
#[inline]
fn dot_i16(x: &[i16], y: &[i16]) -> i32 {
    let mut acc = 0i32;
    for (&xv, &yv) in x.iter().zip(y) {
        acc += i32::from(xv) * i32::from(yv);
    }
    acc
}

/// `c += a · b` for row-major `a (m×k)`, `b (k×n)` i8 operands and an
/// i32 accumulator `c (m×n)`.
///
/// Both operands are widened to i16 once up front (the rhs transposed at
/// the same time), so every output element reduces two contiguous
/// `k`-length i16 slices with no in-loop sign extension; LLVM compiles
/// that reduction to `vpmaddwd` chains (16 multiply-adds per
/// instruction), which is where the integer path's edge over the f32
/// broadcast-AXPY kernels comes from. Columns are processed
/// [`I8_COL_BLOCK`] at a time so each `A` row is streamed once per block.
///
/// Output rows are partitioned contiguously across `threads` workers
/// (`0` defers to the `RDO_THREADS` environment knob) on the persistent
/// [`crate::pool`]. Unlike the float kernels this needs no
/// operation-order argument: i32 addition is associative, so every
/// schedule yields the same matrix, which [`gemm_i8_i32_scalar`] pins in
/// tests.
///
/// Accumulators are 32-bit: with i8 operands any `k ≤ 2¹⁷` is exact.
///
/// # Panics
///
/// Panics if slice lengths do not match the shape arguments.
pub fn gemm_i8_i32(
    a: &[i8],
    b: &[i8],
    c: &mut [i32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(b.len(), k * n, "rhs length");
    assert_eq!(c.len(), m * n, "out length");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if rdo_obs::enabled() {
        rdo_obs::counter_add("tensor.qint.gemm.calls", 1);
        rdo_obs::counter_add("tensor.qint.gemm.ops", 2 * (m * k * n) as u64);
    }
    // widen the lhs and transpose-widen the rhs once; read-only after
    let a16: Vec<i16> = a.iter().map(|&v| i16::from(v)).collect();
    let mut bt16 = vec![0i16; k * n];
    for p in 0..k {
        for (j, &bv) in b[p * n..(p + 1) * n].iter().enumerate() {
            bt16[j * k + p] = i16::from(bv);
        }
    }
    let (a16, bt16) = (&a16, &bt16);
    let threads = crate::parallel::resolve_threads(threads).clamp(1, m);
    let run = |c_rows: &mut [i32], r0: usize| {
        for (i, crow) in c_rows.chunks_mut(n).enumerate() {
            let arow = &a16[(r0 + i) * k..(r0 + i + 1) * k];
            let mut cols = crow.chunks_exact_mut(I8_COL_BLOCK);
            let mut j = 0;
            for cblk in &mut cols {
                let b0 = &bt16[j * k..(j + 1) * k];
                let b1 = &bt16[(j + 1) * k..(j + 2) * k];
                let b2 = &bt16[(j + 2) * k..(j + 3) * k];
                let b3 = &bt16[(j + 3) * k..(j + 4) * k];
                cblk[0] += dot_i16(arow, b0);
                cblk[1] += dot_i16(arow, b1);
                cblk[2] += dot_i16(arow, b2);
                cblk[3] += dot_i16(arow, b3);
                j += I8_COL_BLOCK;
            }
            for cv in cols.into_remainder() {
                *cv += dot_i16(arow, &bt16[j * k..(j + 1) * k]);
                j += 1;
            }
        }
    };
    if threads <= 1 {
        run(c, 0);
        return;
    }
    let rows_per = m.div_ceil(threads);
    let shards: Vec<std::sync::Mutex<&mut [i32]>> =
        c.chunks_mut(rows_per * n).map(std::sync::Mutex::new).collect();
    crate::pool::run(shards.len(), |t| {
        let mut chunk = shards[t].lock().expect("i8 gemm shard poisoned");
        run(&mut chunk[..], t * rows_per);
    });
}

/// The naive triple loop retained as the i8 GEMM oracle: per output
/// element, a strictly sequential `k` dot product. [`gemm_i8_i32`] must
/// equal it exactly for every thread count.
///
/// # Panics
///
/// Panics if slice lengths do not match the shape arguments.
pub fn gemm_i8_i32_scalar(a: &[i8], b: &[i8], c: &mut [i32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(b.len(), k * n, "rhs length");
    assert_eq!(c.len(), m * n, "out length");
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0i32;
            for p in 0..k {
                acc += i32::from(a[i * k + p]) * i32::from(b[p * n + j]);
            }
            c[i * n + j] += acc;
        }
    }
}

/// `y += A · x` for row-major i8 `a (m×k)`, i8 `x (k)`, i32 `y (m)` —
/// the matrix–vector orientation of the integer readout. Rows are
/// partitioned contiguously across workers; results are exact for every
/// thread count.
///
/// # Panics
///
/// Panics if slice lengths do not match the shape arguments.
pub fn gemv_i8_i32(a: &[i8], x: &[i8], y: &mut [i32], m: usize, k: usize, threads: usize) {
    assert_eq!(a.len(), m * k, "matrix length");
    assert_eq!(x.len(), k, "input length");
    assert_eq!(y.len(), m, "output length");
    if m == 0 || k == 0 {
        return;
    }
    if rdo_obs::enabled() {
        rdo_obs::counter_add("tensor.qint.gemv.calls", 1);
        rdo_obs::counter_add("tensor.qint.gemv.ops", 2 * (m * k) as u64);
    }
    let threads = crate::parallel::resolve_threads(threads).clamp(1, m);
    let run = |y_rows: &mut [i32], r0: usize| {
        for (i, yv) in y_rows.iter_mut().enumerate() {
            let row = &a[(r0 + i) * k..(r0 + i + 1) * k];
            let mut acc = 0i32;
            for (&av, &xv) in row.iter().zip(x) {
                acc += i32::from(av) * i32::from(xv);
            }
            *yv += acc;
        }
    };
    if threads <= 1 {
        run(y, 0);
        return;
    }
    let rows_per = m.div_ceil(threads);
    let shards: Vec<std::sync::Mutex<&mut [i32]>> =
        y.chunks_mut(rows_per).map(std::sync::Mutex::new).collect();
    crate::pool::run(shards.len(), |t| {
        let mut chunk = shards[t].lock().expect("i8 gemv shard poisoned");
        run(&mut chunk[..], t * rows_per);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn values(len: usize, bits: u32, seed: u64) -> Vec<u32> {
        let mask = if bits == 32 { u32::MAX } else { (1u32 << bits) - 1 };
        (0..len)
            .map(|i| ((i as u64).wrapping_mul(seed).wrapping_add(i as u64 >> 3)) as u32 & mask)
            .collect()
    }

    fn fill_i8(len: usize, seed: i64) -> Vec<i8> {
        (0..len).map(|i| (((i as i64).wrapping_mul(seed) % 255) - 127) as i8).collect()
    }

    #[test]
    fn bitplanes_roundtrip_across_word_boundaries() {
        for len in [0usize, 1, 7, 63, 64, 65, 128, 200] {
            for bits in [1u32, 2, 8, 16] {
                let v = values(len, bits, 0x9E37_79B9);
                let p = BitPlanes::pack(&v, bits).unwrap();
                assert_eq!(p.unpack(), v, "len={len}, bits={bits}");
                assert_eq!(p.len(), len);
                assert_eq!(p.words_per_plane(), len.div_ceil(64));
            }
        }
    }

    #[test]
    fn column_planes_match_scalar_bits() {
        let (rows, cols, bits) = (70usize, 5usize, 2u32);
        let v = values(rows * cols, bits, 0xDEAD_BEEF);
        let p = ColumnPlanes::pack(&v, rows, cols, bits).unwrap();
        for c in 0..cols {
            for b in 0..bits {
                let plane = p.plane(c, b);
                for r in 0..rows {
                    let bit = (plane[r / 64] >> (r % 64)) & 1;
                    assert_eq!(bit as u32, (v[r * cols + c] >> b) & 1, "r={r}, c={c}, b={b}");
                }
            }
        }
    }

    #[test]
    fn out_of_range_values_rejected() {
        assert!(BitPlanes::pack(&[4], 2).is_err());
        assert!(BitPlanes::pack(&[1], 0).is_err());
        assert!(BitPlanes::pack(&[1], 33).is_err());
        assert!(ColumnPlanes::pack(&[1, 2, 3], 2, 2, 8).is_err()); // wrong len
        assert!(ColumnPlanes::pack(&[256, 0], 2, 1, 8).is_err());
    }

    #[test]
    fn popcount_range_matches_scalar_count() {
        let v = values(150, 1, 0xABCD_EF01);
        let p = BitPlanes::pack(&v, 1).unwrap();
        for (start, end) in [(0usize, 150usize), (0, 0), (3, 17), (60, 70), (64, 128), (149, 150)] {
            let want = v[start..end].iter().sum::<u32>();
            assert_eq!(popcount_range(p.plane(0), start, end), want, "{start}..{end}");
        }
    }

    #[test]
    fn and_popcount_matches_scalar() {
        let a = values(130, 1, 3);
        let b = values(130, 1, 7);
        let pa = BitPlanes::pack(&a, 1).unwrap();
        let pb = BitPlanes::pack(&b, 1).unwrap();
        for (start, end) in [(0usize, 130usize), (5, 69), (64, 130), (100, 101)] {
            let want: u32 = (start..end).map(|i| a[i] & b[i]).sum();
            assert_eq!(and_popcount_range(pa.plane(0), pb.plane(0), start, end), want);
        }
    }

    #[test]
    fn dot_planes_is_exact_integer_dot() {
        let (rows, cols) = (128usize, 3usize);
        let x = values(rows, 8, 0x1234_5677);
        let w = values(rows * cols, 8, 0x0F1E_2D3B);
        let xp = BitPlanes::pack(&x, 8).unwrap();
        let wp = ColumnPlanes::pack(&w, rows, cols, 8).unwrap();
        for c in 0..cols {
            for (start, end) in [(0usize, rows), (0, 16), (16, 32), (100, 128)] {
                let want: u64 =
                    (start..end).map(|r| u64::from(x[r]) * u64::from(w[r * cols + c])).sum();
                assert_eq!(dot_planes_range(&xp, &wp, c, start, end), want, "col {c}");
            }
        }
    }

    #[test]
    fn whole_plane_fast_paths_match_range_forms() {
        let rows = 150usize;
        let a = values(rows, 1, 11);
        let b = values(rows, 1, 23);
        let pa = BitPlanes::pack(&a, 1).unwrap();
        let pb = BitPlanes::pack(&b, 1).unwrap();
        assert_eq!(popcount(pa.plane(0)), popcount_range(pa.plane(0), 0, rows));
        assert_eq!(
            and_popcount(pa.plane(0), pb.plane(0)),
            and_popcount_range(pa.plane(0), pb.plane(0), 0, rows)
        );
        let x = values(rows, 8, 0x1234_5677);
        let w = values(rows * 3, 8, 0x0F1E_2D3B);
        let xp = BitPlanes::pack(&x, 8).unwrap();
        let wp = ColumnPlanes::pack(&w, rows, 3, 8).unwrap();
        for c in 0..3 {
            assert_eq!(dot_planes(&xp, &wp, c), dot_planes_range(&xp, &wp, c, 0, rows));
        }
        let mut batch = vec![0u64; 3];
        dot_planes_all(&xp, &wp, &mut batch);
        for (c, &got) in batch.iter().enumerate() {
            assert_eq!(got, dot_planes(&xp, &wp, c), "batch col {c}");
        }
    }

    #[test]
    fn masked_plane_reproduces_every_range_popcount() {
        let rows = 150usize;
        let v = values(rows, 1, 0xABCD_EF01);
        let p = BitPlanes::pack(&v, 1).unwrap();
        for (start, end) in [(0usize, rows), (0, 0), (3, 17), (60, 70), (64, 128), (149, 150)] {
            let mut masked = p.plane(0).to_vec();
            mask_plane_range(&mut masked, start, end);
            assert_eq!(popcount(&masked), popcount_range(p.plane(0), start, end), "{start}..{end}");
        }
    }

    #[test]
    fn column_counts_match_per_column_popcounts() {
        let (rows, cols, bits) = (130usize, 5usize, 2u32);
        let x = values(rows, 1, 3);
        let w = values(rows * cols, bits, 0x5151_7377);
        let xp = BitPlanes::pack(&x, 1).unwrap();
        let wp = ColumnPlanes::pack(&w, rows, cols, bits).unwrap();
        for (start, end) in [(0usize, rows), (5, 69), (64, 130), (100, 101), (0, 0)] {
            let mut masked = xp.plane(0).to_vec();
            mask_plane_range(&mut masked, start, end);
            let mut got = vec![0u64; cols];
            column_counts(&masked, &wp, &mut got);
            for (c, &count) in got.iter().enumerate() {
                let want: u64 =
                    (start..end).map(|r| u64::from(x[r]) * u64::from(w[r * cols + c])).sum();
                assert_eq!(count, want, "col {c}, {start}..{end}");
            }
        }
    }

    #[test]
    fn gemm_matches_scalar_oracle_exactly() {
        for &(m, k, n) in &[(1usize, 1usize, 1usize), (3, 5, 7), (4, 16, 8), (17, 70, 33)] {
            let a = fill_i8(m * k, 7919);
            let b = fill_i8(k * n, 104729);
            let mut want = vec![1i32; m * n];
            gemm_i8_i32_scalar(&a, &b, &mut want, m, k, n);
            for threads in [1usize, 2, 3, 8] {
                let mut got = vec![1i32; m * n];
                gemm_i8_i32(&a, &b, &mut got, m, k, n, threads);
                assert_eq!(got, want, "({m},{k},{n}) threads={threads}");
            }
        }
    }

    #[test]
    fn gemv_matches_gemm_column() {
        let (m, k) = (9usize, 21usize);
        let a = fill_i8(m * k, 31);
        let x = fill_i8(k, 57);
        let mut want = vec![0i32; m];
        gemm_i8_i32_scalar(&a, &x, &mut want, m, k, 1);
        for threads in [1usize, 2, 4] {
            let mut got = vec![0i32; m];
            gemv_i8_i32(&a, &x, &mut got, m, k, threads);
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn degenerate_shapes_are_no_ops() {
        let mut c = vec![7i32; 6];
        gemm_i8_i32(&[], &[], &mut c, 2, 0, 3, 4); // k == 0
        assert_eq!(c, vec![7; 6]);
        gemm_i8_i32(&[], &[], &mut [], 0, 3, 0, 4);
        let mut y = vec![3i32; 2];
        gemv_i8_i32(&[], &[], &mut y, 2, 0, 2); // k == 0
        assert_eq!(y, vec![3; 2]);
    }

    #[test]
    #[should_panic(expected = "out length")]
    fn mismatched_output_panics() {
        let mut c = vec![0i32; 5];
        gemm_i8_i32(&[0; 6], &[0; 6], &mut c, 2, 3, 2, 1);
    }
}
