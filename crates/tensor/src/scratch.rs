//! Reusable scratch buffers for the hot numeric paths.
//!
//! The GEMM microkernel packs operand panels, convolution lowers through
//! im2col patch matrices, and the trainers build per-batch activation
//! tensors — all of which used to allocate a fresh `Vec` per call. A
//! [`Scratch`] pool checks buffers out and back in so steady-state
//! workloads (training epochs, multi-cycle evaluation, benchmark loops)
//! stop hitting the allocator entirely after warm-up.
//!
//! The pool hands out plain owned `Vec<f32>`s, so a caller can hold any
//! number of buffers simultaneously without fighting the borrow checker;
//! returning them with [`Scratch::recycle`] is what makes the next
//! checkout allocation-free.
//!
//! # Examples
//!
//! ```
//! use rdo_tensor::Scratch;
//!
//! let mut scratch = Scratch::new();
//! let buf = scratch.take_zeroed(1024);
//! assert!(buf.iter().all(|&v| v == 0.0));
//! scratch.recycle(buf);
//! // the second checkout reuses the first buffer's storage
//! let again = scratch.take_zeroed(512);
//! assert!(again.capacity() >= 1024);
//! ```

/// A pool of reusable `f32` (and `f64`) buffers (see the
/// [module docs](self)). The two element types are pooled separately so
/// an f64 checkout never evicts packed f32 panels or vice versa.
#[derive(Debug, Default)]
pub struct Scratch {
    free: Vec<Vec<f32>>,
    free64: Vec<Vec<f64>>,
}

/// How many idle buffers a pool retains. More than this many concurrent
/// checkouts work fine; the excess is simply freed on recycle.
const MAX_POOLED: usize = 16;

impl Scratch {
    /// Creates an empty pool. No memory is held until buffers are
    /// recycled into it.
    pub fn new() -> Self {
        Scratch::default()
    }

    /// Checks out a buffer of exactly `len` elements, all zero.
    ///
    /// Reuses the pooled buffer whose capacity fits best; allocates only
    /// when no pooled buffer is large enough.
    pub fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.take_storage(len);
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Checks out a buffer of exactly `len` elements with unspecified
    /// (but initialized) contents — for callers that overwrite every
    /// element anyway, e.g. packing routines.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.take_storage(len);
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a buffer to the pool for later reuse.
    pub fn recycle(&mut self, buf: Vec<f32>) {
        if buf.capacity() == 0 {
            return;
        }
        if self.free.len() < MAX_POOLED {
            self.free.push(buf);
        }
        self.note_pooled_bytes();
    }

    /// `f64` twin of [`Scratch::take_zeroed`].
    pub fn take_zeroed_f64(&mut self, len: usize) -> Vec<f64> {
        let mut buf = self.take_storage_f64(len);
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// `f64` twin of [`Scratch::take`].
    pub fn take_f64(&mut self, len: usize) -> Vec<f64> {
        let mut buf = self.take_storage_f64(len);
        buf.resize(len, 0.0);
        buf
    }

    /// `f64` twin of [`Scratch::recycle`].
    pub fn recycle_f64(&mut self, buf: Vec<f64>) {
        if buf.capacity() == 0 {
            return;
        }
        if self.free64.len() < MAX_POOLED {
            self.free64.push(buf);
        }
        self.note_pooled_bytes();
    }

    /// Number of idle buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// Number of idle `f64` buffers currently pooled.
    pub fn pooled_f64(&self) -> usize {
        self.free64.len()
    }

    /// Total capacity (in elements) of the idle pooled buffers.
    pub fn pooled_capacity(&self) -> usize {
        self.free.iter().map(Vec::capacity).sum()
    }

    fn take_storage(&mut self, len: usize) -> Vec<f32> {
        if rdo_obs::enabled() {
            rdo_obs::counter_add("tensor.scratch.takes", 1);
            if self.free.iter().all(|b| b.capacity() < len) {
                rdo_obs::counter_add("tensor.scratch.allocs", 1);
            }
        }
        best_fit(&mut self.free, len)
    }

    fn take_storage_f64(&mut self, len: usize) -> Vec<f64> {
        if rdo_obs::enabled() {
            rdo_obs::counter_add("tensor.scratch.takes", 1);
            if self.free64.iter().all(|b| b.capacity() < len) {
                rdo_obs::counter_add("tensor.scratch.allocs", 1);
            }
        }
        best_fit(&mut self.free64, len)
    }

    /// High-water mark of this pool's idle bytes (both element types);
    /// pools are per owner, so the mark tracks the largest single pool.
    fn note_pooled_bytes(&self) {
        if rdo_obs::enabled() {
            let bytes = self.free.iter().map(Vec::capacity).sum::<usize>() * 4
                + self.free64.iter().map(Vec::capacity).sum::<usize>() * 8;
            rdo_obs::counter_max("tensor.scratch.pooled_bytes", bytes as u64);
        }
    }
}

/// Picks the pooled buffer whose capacity fits `len` best (smallest
/// sufficient capacity; otherwise the largest available, which will
/// grow once and then stick around at the new size).
fn best_fit<T>(free: &mut Vec<Vec<T>>, len: usize) -> Vec<T> {
    let mut best: Option<usize> = None;
    for (i, buf) in free.iter().enumerate() {
        let cap = buf.capacity();
        best = Some(match best {
            None => i,
            Some(j) => {
                let bc = free[j].capacity();
                let better = if cap >= len { bc < len || cap < bc } else { bc < len && cap > bc };
                if better {
                    i
                } else {
                    j
                }
            }
        });
    }
    match best {
        Some(i) => free.swap_remove(i),
        None => Vec::with_capacity(len),
    }
}

impl Clone for Scratch {
    /// Cloning yields an *empty* pool: scratch storage is per-owner
    /// working memory, not data, so clones (e.g. of a layer) warm up
    /// their own buffers instead of duplicating megabytes of scratch.
    fn clone(&self) -> Self {
        Scratch::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_zeroed_is_zero_and_reuses_storage() {
        let mut s = Scratch::new();
        let mut a = s.take_zeroed(100);
        a.iter_mut().for_each(|v| *v = 7.0);
        let ptr = a.as_ptr();
        s.recycle(a);
        let b = s.take_zeroed(50);
        assert_eq!(b.as_ptr(), ptr, "storage not reused");
        assert!(b.iter().all(|&v| v == 0.0));
        assert_eq!(b.len(), 50);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient() {
        let mut s = Scratch::new();
        s.recycle(Vec::with_capacity(1000));
        s.recycle(Vec::with_capacity(64));
        let b = s.take(60);
        assert!(b.capacity() < 1000, "should have picked the 64-cap buffer");
        assert_eq!(s.pooled(), 1);
    }

    #[test]
    fn grows_largest_when_nothing_fits() {
        let mut s = Scratch::new();
        s.recycle(Vec::with_capacity(8));
        s.recycle(Vec::with_capacity(64));
        let b = s.take(128);
        assert_eq!(b.len(), 128);
        assert_eq!(s.pooled(), 1, "one (the smaller) buffer left pooled");
    }

    #[test]
    fn multiple_simultaneous_checkouts() {
        let mut s = Scratch::new();
        let a = s.take_zeroed(10);
        let b = s.take_zeroed(20);
        let c = s.take_zeroed(30);
        assert_eq!((a.len(), b.len(), c.len()), (10, 20, 30));
        s.recycle(a);
        s.recycle(b);
        s.recycle(c);
        assert_eq!(s.pooled(), 3);
        assert!(s.pooled_capacity() >= 60);
    }

    #[test]
    fn f64_pool_is_independent_and_reuses_storage() {
        let mut s = Scratch::new();
        let mut a = s.take_zeroed_f64(100);
        a.iter_mut().for_each(|v| *v = 7.0);
        let ptr = a.as_ptr();
        s.recycle_f64(a);
        assert_eq!((s.pooled(), s.pooled_f64()), (0, 1));
        let b = s.take_zeroed_f64(50);
        assert_eq!(b.as_ptr(), ptr, "f64 storage not reused");
        assert!(b.iter().all(|&v| v == 0.0));
        // the f32 pool is untouched by f64 traffic
        let c = s.take_zeroed(10);
        s.recycle(c);
        s.recycle_f64(b);
        assert_eq!((s.pooled(), s.pooled_f64()), (1, 1));
    }

    #[test]
    fn clone_is_empty() {
        let mut s = Scratch::new();
        s.recycle(Vec::with_capacity(100));
        assert_eq!(s.clone().pooled(), 0);
    }

    #[test]
    fn pool_is_bounded() {
        let mut s = Scratch::new();
        for _ in 0..(MAX_POOLED + 10) {
            s.recycle(Vec::with_capacity(8));
        }
        assert_eq!(s.pooled(), MAX_POOLED);
    }
}
