//! Process-wide persistent deterministic worker pool.
//!
//! Every parallel region in the workspace used to spawn fresh OS threads
//! through [`std::thread::scope`] on every call — dozens of times per
//! programming cycle once GEMM, PWT refresh and the cycle loop stack up.
//! Thread spawn/join costs tens of microseconds each, which the sweep
//! engine pays millions of times over a fig5-style grid. This module
//! spawns the workers **once**, parks them on a condvar, and hands each
//! parallel region to the parked set ([`run`]), eliminating the per-call
//! spawn/join entirely.
//!
//! # Determinism
//!
//! The pool never changes results. A parallel region is expressed as
//! `f(0), f(1), …, f(shards-1)`, where shard `i` performs exactly the
//! work (and the per-unit operation order) the `i`-th scoped thread used
//! to perform. The pool only decides *which OS thread* executes a shard,
//! never *what* a shard computes — the same contract `RDO_THREADS` has
//! always had (see [`crate::parallel`]). [`run`] is therefore bitwise
//! interchangeable with [`run_scoped`] (the retained
//! [`std::thread::scope`] reference implementation) and with a plain
//! serial loop, which the pool equivalence tests pin.
//!
//! # Reentrancy
//!
//! A shard that itself reaches a parallel region (e.g. a pooled grid
//! point evaluating a threaded GEMM) must not submit to the pool it is
//! running on — the workers are busy with the outer region, and waiting
//! for them would deadlock. Nested [`run`] calls therefore execute their
//! shards serially on the calling thread (outer parallelism already owns
//! the cores; results are identical by the determinism contract above).
//!
//! # Knobs
//!
//! `RDO_POOL=0` (or `off`) routes every [`run`] call to [`run_scoped`],
//! restoring the per-call spawn behaviour; [`set_enabled`] toggles the
//! same switch programmatically (the benchmarks use it to measure pool
//! vs. scoped-threads in one process). Worker count is demand-driven:
//! the pool lazily grows to the largest shard count ever requested and
//! parks idle workers, so an `RDO_THREADS=64` test costs 63 parked
//! threads, not 63 spawns per call.
//!
//! # Safety
//!
//! This is the one module in `rdo-tensor` that uses `unsafe` (the crate
//! is otherwise `#![deny(unsafe_code)]`-clean): parked workers outlive
//! any single parallel region, so the region's borrowed closure is
//! handed to them as a type-erased pointer ([`TaskPtr`]). Soundness
//! rests on a strict completion protocol, documented on [`TaskPtr`] and
//! [`run`]: the submitting thread does not return until every claimed
//! shard has finished and no further shard can be claimed, so the
//! closure (and everything it borrows) strictly outlives every
//! dereference; `F: Sync` makes the shared cross-thread calls sound.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

/// Type-erased pointer to a caller's `Fn(usize) + Sync` closure, shipped
/// to the parked workers.
///
/// # Safety
///
/// A `TaskPtr` is only ever dereferenced between the moment [`run`]
/// publishes the job and the moment [`run`] observes completion (all
/// shards claimed **and** finished) under the state mutex — and [`run`]
/// keeps the closure alive (borrowed on its stack) for that whole
/// window. Claiming a shard and finishing a shard both happen under the
/// same mutex, so "observed complete" strictly happens-after the last
/// dereference. Sending the pointer across threads is sound because it
/// was created from `&F` with `F: Sync`.
#[derive(Clone, Copy)]
struct TaskPtr {
    data: *const (),
    call: unsafe fn(*const (), usize),
}

// SAFETY: see the TaskPtr docs — the pointee is `Sync` and outlives
// every dereference by the completion protocol.
#[allow(unsafe_code)]
unsafe impl Send for TaskPtr {}

impl TaskPtr {
    fn new<F: Fn(usize) + Sync>(f: &F) -> Self {
        #[allow(unsafe_code)]
        unsafe fn call_impl<F: Fn(usize) + Sync>(data: *const (), i: usize) {
            // SAFETY: `data` was created from `&F` in `TaskPtr::new` and
            // the completion protocol keeps the borrow alive.
            let f = unsafe { &*data.cast::<F>() };
            f(i);
        }
        TaskPtr { data: (f as *const F).cast::<()>(), call: call_impl::<F> }
    }

    /// # Safety
    ///
    /// Caller must hold a shard claim of the job this pointer belongs to
    /// (see the type docs).
    #[allow(unsafe_code)]
    unsafe fn invoke(&self, i: usize) {
        // SAFETY: forwarded contract.
        unsafe { (self.call)(self.data, i) }
    }
}

/// One published parallel region.
struct Job {
    task: TaskPtr,
    /// Total shard count; shard indices are `0..shards`.
    shards: usize,
    /// Next unclaimed shard index (claims happen under the state mutex).
    next: usize,
    /// Shards currently executing on some thread.
    active: usize,
}

/// Pool state guarded by one mutex.
struct State {
    /// Bumped once per published job so parked workers can tell a fresh
    /// job from the one they already drained.
    epoch: u64,
    job: Option<Job>,
    /// First panic payload captured from a shard; re-raised by [`run`].
    panic: Option<Box<dyn Any + Send>>,
    /// Worker threads spawned so far.
    spawned: usize,
}

struct Shared {
    state: Mutex<State>,
    /// Workers park here waiting for a new epoch.
    work: Condvar,
    /// The submitter parks here waiting for shard completion.
    done: Condvar,
}

fn shared() -> &'static Shared {
    static SHARED: OnceLock<Shared> = OnceLock::new();
    SHARED.get_or_init(|| Shared {
        state: Mutex::new(State { epoch: 0, job: None, panic: None, spawned: 0 }),
        work: Condvar::new(),
        done: Condvar::new(),
    })
}

/// Serializes submitters: the pool runs one job at a time. Concurrent
/// top-level parallel regions (e.g. the serving engine's request threads)
/// do not queue behind it — they fall back to [`run_scoped`], preserving
/// the old concurrency behaviour.
fn submit_lock() -> &'static Mutex<()> {
    static SUBMIT: OnceLock<Mutex<()>> = OnceLock::new();
    SUBMIT.get_or_init(|| Mutex::new(()))
}

thread_local! {
    /// True while this thread is executing a pool shard (worker threads
    /// and the participating submitter alike); nested [`run`] calls see
    /// it and degrade to the serial loop.
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// `RDO_POOL` switch: `0`/`off`/`false` disables the persistent pool
/// (every [`run`] becomes [`run_scoped`]). Initialized from the
/// environment on first use, overridable via [`set_enabled`].
fn enabled_flag() -> &'static AtomicBool {
    static ENABLED: OnceLock<AtomicBool> = OnceLock::new();
    ENABLED.get_or_init(|| {
        let on = !matches!(
            std::env::var("RDO_POOL").as_deref(),
            Ok("0") | Ok("off") | Ok("false") | Ok("OFF")
        );
        AtomicBool::new(on)
    })
}

/// Whether [`run`] currently uses the persistent pool (see [`set_enabled`]).
pub fn enabled() -> bool {
    enabled_flag().load(Ordering::Relaxed)
}

/// Switches [`run`] between the persistent pool (`true`, the default
/// unless `RDO_POOL=0`) and per-call scoped threads (`false`). Results
/// are bitwise identical either way; the benchmarks flip this to measure
/// the spawn/join overhead in a single process.
pub fn set_enabled(on: bool) {
    enabled_flag().store(on, Ordering::Relaxed);
}

/// Cumulative pool activity counters (process-wide), for benchmarks and
/// observability. Monotonically increasing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Parallel regions executed on the persistent pool.
    pub pooled_jobs: u64,
    /// Parallel regions that fell back to per-call scoped threads
    /// (pool disabled, or a concurrent submitter held the pool).
    pub scoped_jobs: u64,
    /// Nested regions degraded to the serial loop.
    pub nested_serial: u64,
    /// Worker threads spawned over the process lifetime.
    pub threads_spawned: u64,
}

static POOLED_JOBS: AtomicU64 = AtomicU64::new(0);
static SCOPED_JOBS: AtomicU64 = AtomicU64::new(0);
static NESTED_SERIAL: AtomicU64 = AtomicU64::new(0);
static THREADS_SPAWNED: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the cumulative [`PoolStats`].
pub fn stats() -> PoolStats {
    PoolStats {
        pooled_jobs: POOLED_JOBS.load(Ordering::Relaxed),
        scoped_jobs: SCOPED_JOBS.load(Ordering::Relaxed),
        nested_serial: NESTED_SERIAL.load(Ordering::Relaxed),
        threads_spawned: THREADS_SPAWNED.load(Ordering::Relaxed),
    }
}

/// Executes `f(0), f(1), …, f(shards - 1)`, distributing the shard
/// indices over the persistent worker pool (the submitting thread
/// participates, so `shards` shards use `shards` threads).
///
/// Dispatch, in order:
/// * `shards <= 1` — `f(0)` inline (no synchronization at all);
/// * nested inside another pool shard — serial loop on this thread (see
///   the [module docs](self) on reentrancy);
/// * pool disabled ([`set_enabled`] / `RDO_POOL=0`) or another thread is
///   mid-submission — [`run_scoped`];
/// * otherwise — the persistent pool.
///
/// Every path calls the same `f` with the same indices, so results are
/// identical regardless of which is taken; only wall-clock differs.
///
/// # Panics
///
/// If any shard panics, the first captured payload is re-raised on the
/// submitting thread after **all** shards have finished (matching the
/// join-then-propagate behaviour of [`std::thread::scope`]).
pub fn run<F: Fn(usize) + Sync>(shards: usize, f: F) {
    if shards <= 1 {
        if shards == 1 {
            f(0);
        }
        return;
    }
    if IN_POOL.with(std::cell::Cell::get) {
        NESTED_SERIAL.fetch_add(1, Ordering::Relaxed);
        if rdo_obs::enabled() {
            rdo_obs::counter_add("sweep.pool.nested_serial", 1);
        }
        for i in 0..shards {
            f(i);
        }
        return;
    }
    if !enabled() {
        scoped_fallback(shards, &f);
        return;
    }
    // One job at a time: a second concurrent submitter keeps its old
    // scoped-thread behaviour instead of queueing.
    let Ok(_submit) = submit_lock().try_lock() else {
        scoped_fallback(shards, &f);
        return;
    };
    POOLED_JOBS.fetch_add(1, Ordering::Relaxed);
    if rdo_obs::enabled() {
        rdo_obs::counter_add("sweep.pool.jobs", 1);
        rdo_obs::counter_add("sweep.pool.shards", shards as u64);
    }
    let sh = shared();
    let task = TaskPtr::new(&f);
    {
        let mut st = sh.state.lock().expect("pool state poisoned");
        ensure_workers(&mut st, shards - 1);
        debug_assert!(st.job.is_none(), "submit with a job outstanding");
        st.epoch += 1;
        st.job = Some(Job { task, shards, next: 0, active: 0 });
        drop(st);
    }
    sh.work.notify_all();

    // The submitter works too: claim shards like any worker.
    IN_POOL.with(|c| c.set(true));
    let st = sh.state.lock().expect("pool state poisoned");
    let st = drain_shards(sh, st, task);
    IN_POOL.with(|c| c.set(false));

    // Wait until every claimed shard has finished; afterwards no thread
    // can touch `task` again (nothing is left to claim), so returning —
    // and dropping `f` — is sound.
    let mut st = st;
    loop {
        let job = st.job.as_ref().expect("job cleared only by its submitter");
        if job.next >= job.shards && job.active == 0 {
            break;
        }
        st = sh.done.wait(st).expect("pool state poisoned");
    }
    st.job = None;
    let panic = st.panic.take();
    drop(st);
    if let Some(p) = panic {
        resume_unwind(p);
    }
}

/// [`run_scoped`] plus the fallback bookkeeping shared by the disabled
/// and pool-busy paths.
fn scoped_fallback<F: Fn(usize) + Sync>(shards: usize, f: &F) {
    SCOPED_JOBS.fetch_add(1, Ordering::Relaxed);
    if rdo_obs::enabled() {
        rdo_obs::counter_add("sweep.pool.scoped_jobs", 1);
    }
    run_scoped_inner(shards, f);
}

/// The retained reference implementation: `f(0..shards)` on `shards`
/// freshly spawned scoped threads, exactly as every parallel region in
/// the workspace did before the pool existed. [`run`] must be bitwise
/// equivalent to this at every shard count (the pool tests pin it), and
/// the sweep benchmark measures the spawn/join cost against it.
///
/// # Panics
///
/// Propagates shard panics after joining all threads (the
/// [`std::thread::scope`] contract).
pub fn run_scoped<F: Fn(usize) + Sync>(shards: usize, f: F) {
    if shards <= 1 {
        if shards == 1 {
            f(0);
        }
        return;
    }
    run_scoped_inner(shards, &f);
}

fn run_scoped_inner<F: Fn(usize) + Sync>(shards: usize, f: &F) {
    std::thread::scope(|s| {
        for i in 0..shards {
            s.spawn(move || f(i));
        }
    });
}

/// Claims and executes shards of the current job until none are left.
/// Takes and returns the state guard so callers keep the lock across
/// the claim bookkeeping; `f` is only invoked with the lock released.
fn drain_shards<'a>(
    sh: &'a Shared,
    mut st: MutexGuard<'a, State>,
    task: TaskPtr,
) -> MutexGuard<'a, State> {
    while let Some(job) = st.job.as_mut() {
        if job.next >= job.shards {
            break;
        }
        let i = job.next;
        job.next += 1;
        job.active += 1;
        drop(st);
        // SAFETY: the claim above (taken under the mutex) keeps the
        // submitter blocked until the matching completion below.
        #[allow(unsafe_code)]
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { task.invoke(i) }));
        st = sh.state.lock().expect("pool state poisoned");
        let job = st.job.as_mut().expect("job outlives its active shards");
        job.active -= 1;
        let finished = job.next >= job.shards && job.active == 0;
        if let Err(p) = result {
            if st.panic.is_none() {
                st.panic = Some(p);
            }
        }
        if finished {
            sh.done.notify_all();
        }
    }
    st
}

/// Upper bound on pool size: shard counts beyond it are still executed
/// (workers drain multiple shards), they just share the existing
/// threads. Generous — 4× the machine, at least 64 so the
/// `RDO_THREADS=64` determinism tests exercise real pool concurrency.
fn worker_cap() -> usize {
    std::thread::available_parallelism()
        .map_or(16, std::num::NonZeroUsize::get)
        .saturating_mul(4)
        .max(64)
}

/// Grows the worker set to at least `want` parked threads (capped at
/// [`worker_cap`]). Called with the state lock held; workers are spawned
/// detached and live for the process.
fn ensure_workers(st: &mut State, want: usize) {
    let want = want.min(worker_cap());
    while st.spawned < want {
        let idx = st.spawned;
        st.spawned += 1;
        THREADS_SPAWNED.fetch_add(1, Ordering::Relaxed);
        if rdo_obs::enabled() {
            rdo_obs::counter_add("sweep.pool.threads_spawned", 1);
        }
        std::thread::Builder::new()
            .name(format!("rdo-pool-{idx}"))
            .spawn(worker_loop)
            .expect("spawning a pool worker failed");
    }
}

/// Body of a parked worker: wait for a fresh epoch, drain its shards,
/// park again. Workers never exit; an idle pool is `spawned` threads
/// blocked on a condvar.
fn worker_loop() {
    // Everything a worker runs is a pool shard; nested regions inside it
    // must degrade to the serial loop.
    IN_POOL.with(|c| c.set(true));
    let sh = shared();
    let mut seen = 0u64;
    let mut st = sh.state.lock().expect("pool state poisoned");
    loop {
        while st.epoch == seen || st.job.is_none() {
            st = sh.work.wait(st).expect("pool state poisoned");
        }
        seen = st.epoch;
        let task = st.job.as_ref().expect("checked above").task;
        st = drain_shards(sh, st, task);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_every_shard_exactly_once() {
        for shards in [0usize, 1, 2, 3, 8, 33] {
            let hits: Vec<AtomicUsize> = (0..shards).map(|_| AtomicUsize::new(0)).collect();
            run(shards, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "shard {i} of {shards}");
            }
        }
    }

    #[test]
    fn scoped_reference_runs_every_shard() {
        let hits: Vec<AtomicUsize> = (0..7).map(|_| AtomicUsize::new(0)).collect();
        run_scoped(7, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_run_degrades_to_serial_without_deadlock() {
        let before = stats().nested_serial;
        let outer: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        run(4, |i| {
            // a nested region inside a shard must complete serially
            let inner: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
            run(3, |j| {
                inner[j].fetch_add(1, Ordering::Relaxed);
            });
            assert!(inner.iter().all(|h| h.load(Ordering::Relaxed) == 1));
            outer[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(outer.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert!(stats().nested_serial > before, "nested calls must take the serial path");
    }

    #[test]
    fn shard_panic_propagates_after_completion() {
        let done: Vec<AtomicUsize> = (0..6).map(|_| AtomicUsize::new(0)).collect();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run(6, |i| {
                if i == 3 {
                    panic!("shard 3 exploded");
                }
                done[i].fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(result.is_err(), "the shard panic must reach the submitter");
        // all other shards still ran exactly once (join-then-propagate)
        for (i, h) in done.iter().enumerate() {
            if i != 3 {
                assert_eq!(h.load(Ordering::Relaxed), 1, "shard {i}");
            }
        }
        // and the pool is still usable afterwards
        let hits = AtomicUsize::new(0);
        run(4, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn disabled_pool_falls_back_to_scoped() {
        let was = enabled();
        set_enabled(false);
        let before = stats().scoped_jobs;
        let hits: Vec<AtomicUsize> = (0..5).map(|_| AtomicUsize::new(0)).collect();
        run(5, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        set_enabled(was);
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert!(stats().scoped_jobs > before);
    }

    #[test]
    fn many_more_shards_than_cores() {
        let n = 257usize;
        let sum = AtomicUsize::new(0);
        run(n, |i| {
            sum.fetch_add(i + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), n * (n + 1) / 2);
    }
}
