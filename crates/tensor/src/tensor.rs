//! The dense row-major `f32` tensor type.

use crate::error::{Result, TensorError};
use crate::shape::Shape;

/// A dense, row-major tensor of `f32` values.
///
/// This is the numeric workhorse of the whole reproduction: network
/// activations, weights, gradients, crossbar conductance matrices and device
/// statistics are all stored as `Tensor`s. The representation is a flat
/// `Vec<f32>` plus a [`Shape`]; all views are materialized (no aliasing), so
/// the type is `Send + Sync` and trivially serializable.
///
/// # Examples
///
/// ```
/// use rdo_tensor::Tensor;
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = Tensor::full(&[2, 2], 0.5);
/// let c = a.zip_map(&b, |x, y| x * y)?;
/// assert_eq!(c.data(), &[0.5, 1.0, 1.5, 2.0]);
/// # Ok::<(), rdo_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor { data: vec![0.0; shape.len()], shape }
    }

    /// Creates a tensor of ones with the given shape.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Tensor { data: vec![value; shape.len()], shape }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len()` does not equal
    /// the element count implied by `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.len() {
            return Err(TensorError::ShapeMismatch {
                op: "from_vec",
                lhs: vec![data.len()],
                rhs: dims.to_vec(),
            });
        }
        Ok(Tensor { data, shape })
    }

    /// Creates a tensor by evaluating `f` at every flat index.
    pub fn from_fn(dims: &[usize], f: impl FnMut(usize) -> f32) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.len()).map(f).collect();
        Tensor { data, shape }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying flat data, row-major.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying flat data, row-major.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for an invalid index.
    pub fn at(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for an invalid index.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Self> {
        let new_shape = Shape::new(dims);
        if new_shape.len() != self.len() {
            return Err(TensorError::ShapeMismatch {
                op: "reshape",
                lhs: self.dims().to_vec(),
                rhs: dims.to_vec(),
            });
        }
        Ok(Tensor { data: self.data.clone(), shape: new_shape })
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, mut f: impl FnMut(f32) -> f32) -> Self {
        Tensor { data: self.data.iter().map(|&x| f(x)).collect(), shape: self.shape.clone() }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors elementwise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip_map(&self, other: &Tensor, mut f: impl FnMut(f32, f32) -> f32) -> Result<Self> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "zip_map",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        Ok(Tensor {
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
            shape: self.shape.clone(),
        })
    }

    /// Accumulates `alpha * other` into `self` (`axpy`), elementwise.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "axpy",
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Self> {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Self> {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Self> {
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiplies every element by a scalar, returning a new tensor.
    pub fn scale(&self, alpha: f32) -> Self {
        self.map(|x| x * alpha)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (`-inf` for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (`+inf` for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element of a 1-D view of the data
    /// (first occurrence wins; 0 for an empty tensor).
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in self.data.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// Squared L2 norm of the data.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Returns row `r` of a rank-2 tensor as a slice.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrix tensors and
    /// [`TensorError::IndexOutOfBounds`] for an invalid row.
    pub fn row(&self, r: usize) -> Result<&[f32]> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "row",
                expected: 2,
                actual: self.shape.rank(),
            });
        }
        let (rows, cols) = (self.shape.dim(0), self.shape.dim(1));
        if r >= rows {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![r],
                shape: self.dims().to_vec(),
            });
        }
        Ok(&self.data[r * cols..(r + 1) * cols])
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrix tensors.
    pub fn transpose2(&self) -> Result<Self> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "transpose2",
                expected: 2,
                actual: self.shape.rank(),
            });
        }
        let (rows, cols) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![0.0f32; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                out[c * rows + r] = self.data[r * cols + c];
            }
        }
        Tensor::from_vec(out, &[cols, rows])
    }
}

impl FromIterator<f32> for Tensor {
    /// Collects an iterator into a rank-1 tensor.
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> Self {
        let data: Vec<f32> = iter.into_iter().collect();
        let n = data.len();
        Tensor { data, shape: Shape::new(&[n]) }
    }
}

impl AsRef<[f32]> for Tensor {
    fn as_ref(&self) -> &[f32] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut t = Tensor::zeros(&[2, 3]);
        assert_eq!(t.len(), 6);
        t.set(&[1, 2], 5.0).unwrap();
        assert_eq!(t.at(&[1, 2]).unwrap(), 5.0);
        assert_eq!(t.at(&[0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[3, 2]);
        assert!(a.add(&b).is_err());
        assert!(a.axpy(1.0, &b).is_err());
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(vec![1.0, -2.0, 3.0, 0.5], &[2, 2]).unwrap();
        assert_eq!(a.sum(), 2.5);
        assert_eq!(a.mean(), 0.625);
        assert_eq!(a.max(), 3.0);
        assert_eq!(a.min(), -2.0);
        assert_eq!(a.argmax(), 2);
        assert!((a.norm_sq() - (1.0 + 4.0 + 9.0 + 0.25)).abs() < 1e-6);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]).unwrap();
        let b = a.reshape(&[3, 2]).unwrap();
        assert_eq!(b.data(), a.data());
        assert!(a.reshape(&[4]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]).unwrap();
        let t = a.transpose2().unwrap();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.at(&[2, 1]).unwrap(), a.at(&[1, 2]).unwrap());
        assert_eq!(t.transpose2().unwrap(), a);
    }

    #[test]
    fn row_slicing() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]).unwrap();
        assert_eq!(a.row(1).unwrap(), &[3.0, 4.0, 5.0]);
        assert!(a.row(2).is_err());
        assert!(Tensor::zeros(&[4]).row(0).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(&[3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn collect_into_tensor() {
        let t: Tensor = (0..4).map(|i| i as f32).collect();
        assert_eq!(t.dims(), &[4]);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 3.0]);
    }
}
