//! im2col / col2im lowering for 2-D convolution.
//!
//! Convolutions in the `rdo-nn` crate are computed as matrix
//! products over im2col patch matrices. This mirrors how an RRAM accelerator
//! maps a convolution onto crossbars: each kernel becomes one column of a
//! weight matrix and each input patch one activation vector, which is exactly
//! the VMM the paper's crossbars execute.

use crate::error::{Result, TensorError};
use crate::tensor::Tensor;

/// Geometry of a 2-D convolution (single stride/padding for both axes).
///
/// # Examples
///
/// ```
/// use rdo_tensor::Conv2dGeometry;
///
/// let g = Conv2dGeometry::new(3, 8, 3, 1, 1); // 3→8 channels, 3×3, stride 1, pad 1
/// assert_eq!(g.output_hw(32, 32), (32, 32));
/// assert_eq!(g.patch_len(), 3 * 3 * 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dGeometry {
    /// Input channel count.
    pub in_channels: usize,
    /// Output channel count (number of kernels).
    pub out_channels: usize,
    /// Square kernel side length.
    pub kernel: usize,
    /// Stride along both axes.
    pub stride: usize,
    /// Zero padding along both axes.
    pub padding: usize,
}

impl Conv2dGeometry {
    /// Creates a geometry descriptor.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        Conv2dGeometry { in_channels, out_channels, kernel, stride, padding }
    }

    /// Output spatial size for an `h × w` input.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.padding - self.kernel) / self.stride + 1;
        let ow = (w + 2 * self.padding - self.kernel) / self.stride + 1;
        (oh, ow)
    }

    /// Length of one flattened input patch (`in_channels · kernel²`) —
    /// the inner dimension of the lowered matmul and the crossbar row count
    /// this layer needs.
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }
}

/// Lowers a batch of images `(n, c, h, w)` to a patch matrix of shape
/// `(n · oh · ow, c · kernel²)`.
///
/// Row `b·oh·ow + y·ow + x` holds the flattened receptive field of output
/// pixel `(y, x)` of batch element `b`, so `im2col(x) · Wᵀ` computes the
/// convolution for kernel matrix `W` of shape `(out_channels, patch_len)`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] unless `input` has rank 4, and
/// [`TensorError::ShapeMismatch`] if the channel count disagrees with `geom`.
pub fn im2col(input: &Tensor, geom: &Conv2dGeometry) -> Result<Tensor> {
    if input.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            op: "im2col",
            expected: 4,
            actual: input.shape().rank(),
        });
    }
    let [n, c, h, w] = [input.dims()[0], input.dims()[1], input.dims()[2], input.dims()[3]];
    if c != geom.in_channels {
        return Err(TensorError::ShapeMismatch {
            op: "im2col",
            lhs: input.dims().to_vec(),
            rhs: vec![geom.in_channels],
        });
    }
    let (oh, ow) = geom.output_hw(h, w);
    let patch = geom.patch_len();
    let mut out = vec![0.0f32; n * oh * ow * patch];
    im2col_into(input, geom, &mut out)?;
    Tensor::from_vec(out, &[n * oh * ow, patch])
}

/// [`im2col`] into a caller-provided buffer of `n · oh · ow · patch_len`
/// elements, which **must be zeroed** (padding positions are skipped, not
/// written). Lets `Conv2d` reuse one patch buffer across batches instead
/// of allocating per forward pass — pair with
/// [`Scratch::take_zeroed`](crate::Scratch::take_zeroed).
///
/// # Errors
///
/// Returns the same shape errors as [`im2col`], plus a
/// [`TensorError::ShapeMismatch`] if `out` has the wrong length.
pub fn im2col_into(input: &Tensor, geom: &Conv2dGeometry, out: &mut [f32]) -> Result<()> {
    if input.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            op: "im2col_into",
            expected: 4,
            actual: input.shape().rank(),
        });
    }
    let [n, c, h, w] = [input.dims()[0], input.dims()[1], input.dims()[2], input.dims()[3]];
    if c != geom.in_channels {
        return Err(TensorError::ShapeMismatch {
            op: "im2col_into",
            lhs: input.dims().to_vec(),
            rhs: vec![geom.in_channels],
        });
    }
    let (oh, ow) = geom.output_hw(h, w);
    let patch = geom.patch_len();
    if out.len() != n * oh * ow * patch {
        return Err(TensorError::ShapeMismatch {
            op: "im2col_into",
            lhs: vec![out.len()],
            rhs: vec![n * oh * ow * patch],
        });
    }
    let k = geom.kernel;
    let data = input.data();
    for b in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = ((b * oh + oy) * ow + ox) * patch;
                for ch in 0..c {
                    for ky in 0..k {
                        let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue; // stays zero (padding)
                        }
                        let src = ((b * c + ch) * h + iy as usize) * w;
                        let dst = row + (ch * k + ky) * k;
                        for kx in 0..k {
                            let ix = (ox * geom.stride + kx) as isize - geom.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            out[dst + kx] = data[src + ix as usize];
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Adjoint of [`im2col`]: scatters a patch-matrix gradient of shape
/// `(n · oh · ow, c · kernel²)` back to an image gradient `(n, c, h, w)`.
///
/// Overlapping patches accumulate, which is exactly the adjoint relation
/// `⟨im2col(x), g⟩ = ⟨x, col2im(g)⟩` the backward pass needs.
///
/// # Errors
///
/// Returns a shape error if `cols` does not match the geometry implied by
/// `geom` and `(n, h, w)`.
pub fn col2im(
    cols: &Tensor,
    geom: &Conv2dGeometry,
    n: usize,
    h: usize,
    w: usize,
) -> Result<Tensor> {
    let (oh, ow) = geom.output_hw(h, w);
    let patch = geom.patch_len();
    if cols.dims() != [n * oh * ow, patch] {
        return Err(TensorError::ShapeMismatch {
            op: "col2im",
            lhs: cols.dims().to_vec(),
            rhs: vec![n * oh * ow, patch],
        });
    }
    let mut out = vec![0.0f32; n * geom.in_channels * h * w];
    col2im_into(cols.data(), geom, n, h, w, &mut out)?;
    Tensor::from_vec(out, &[n, geom.in_channels, h, w])
}

/// [`col2im`] from a raw patch-gradient slice into a caller-provided
/// `(n · c · h · w)` buffer. Overlapping patches **accumulate into**
/// `out`, so zero it first for a pure adjoint.
///
/// # Errors
///
/// Returns a shape error if either slice length disagrees with the
/// geometry implied by `geom` and `(n, h, w)`.
pub fn col2im_into(
    cols: &[f32],
    geom: &Conv2dGeometry,
    n: usize,
    h: usize,
    w: usize,
    out: &mut [f32],
) -> Result<()> {
    let (oh, ow) = geom.output_hw(h, w);
    let patch = geom.patch_len();
    if cols.len() != n * oh * ow * patch {
        return Err(TensorError::ShapeMismatch {
            op: "col2im_into",
            lhs: vec![cols.len()],
            rhs: vec![n * oh * ow * patch],
        });
    }
    let c = geom.in_channels;
    if out.len() != n * c * h * w {
        return Err(TensorError::ShapeMismatch {
            op: "col2im_into",
            lhs: vec![out.len()],
            rhs: vec![n * c * h * w],
        });
    }
    let k = geom.kernel;
    let data = cols;
    for b in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = ((b * oh + oy) * ow + ox) * patch;
                for ch in 0..c {
                    for ky in 0..k {
                        let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let dst = ((b * c + ch) * h + iy as usize) * w;
                        let src = row + (ch * k + ky) * k;
                        for kx in 0..k {
                            let ix = (ox * geom.stride + kx) as isize - geom.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            out[dst + ix as usize] += data[src + kx];
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::matmul;

    #[test]
    fn geometry_output_sizes() {
        let g = Conv2dGeometry::new(1, 1, 3, 1, 0);
        assert_eq!(g.output_hw(5, 5), (3, 3));
        let g = Conv2dGeometry::new(1, 1, 3, 1, 1);
        assert_eq!(g.output_hw(5, 5), (5, 5));
        let g = Conv2dGeometry::new(1, 1, 3, 2, 1);
        assert_eq!(g.output_hw(8, 8), (4, 4));
    }

    #[test]
    fn im2col_identity_kernel_reproduces_input() {
        // 1×1 kernel, stride 1, no padding: patches are just the pixels.
        let g = Conv2dGeometry::new(2, 1, 1, 1, 0);
        let x = Tensor::from_fn(&[1, 2, 3, 3], |i| i as f32);
        let cols = im2col(&x, &g).unwrap();
        assert_eq!(cols.dims(), &[9, 2]);
        // column 0 is channel 0, column 1 is channel 1
        for p in 0..9 {
            assert_eq!(cols.at(&[p, 0]).unwrap(), p as f32);
            assert_eq!(cols.at(&[p, 1]).unwrap(), (9 + p) as f32);
        }
    }

    #[test]
    fn convolution_via_im2col_matches_direct() {
        let g = Conv2dGeometry::new(1, 1, 3, 1, 1);
        let x = Tensor::from_fn(&[1, 1, 4, 4], |i| (i as f32) - 8.0);
        // Laplacian-like kernel
        let kern =
            Tensor::from_vec(vec![0.0, 1.0, 0.0, 1.0, -4.0, 1.0, 0.0, 1.0, 0.0], &[1, 9]).unwrap();
        let cols = im2col(&x, &g).unwrap();
        let y = matmul(&cols, &kern.transpose2().unwrap()).unwrap(); // (16,1)
                                                                     // direct convolution check for an interior pixel (1,1)
        let direct = |cy: isize, cx: isize| -> f32 {
            let mut acc = 0.0;
            let kv = [[0.0, 1.0, 0.0], [1.0, -4.0, 1.0], [0.0, 1.0, 0.0]];
            for dy in -1..=1isize {
                for dx in -1..=1isize {
                    let (iy, ix) = (cy + dy, cx + dx);
                    if (0..4).contains(&iy) && (0..4).contains(&ix) {
                        acc += kv[(dy + 1) as usize][(dx + 1) as usize]
                            * x.at(&[0, 0, iy as usize, ix as usize]).unwrap();
                    }
                }
            }
            acc
        };
        for cy in 0..4 {
            for cx in 0..4 {
                let got = y.at(&[(cy * 4 + cx) as usize, 0]).unwrap();
                assert!((got - direct(cy, cx)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // ⟨im2col(x), g⟩ must equal ⟨x, col2im(g)⟩ for arbitrary x, g.
        let g = Conv2dGeometry::new(2, 3, 3, 2, 1);
        let x = Tensor::from_fn(&[2, 2, 5, 5], |i| ((i * 37) % 17) as f32 - 8.0);
        let cols = im2col(&x, &g).unwrap();
        let grad = Tensor::from_fn(cols.dims(), |i| ((i * 53) % 19) as f32 - 9.0);
        let back = col2im(&grad, &g, 2, 5, 5).unwrap();
        let lhs: f32 = cols.data().iter().zip(grad.data()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() / lhs.abs().max(1.0) < 1e-4, "{lhs} vs {rhs}");
    }

    #[test]
    fn wrong_rank_rejected() {
        let g = Conv2dGeometry::new(1, 1, 3, 1, 1);
        assert!(im2col(&Tensor::zeros(&[3, 4, 4]), &g).is_err());
    }

    #[test]
    fn wrong_channels_rejected() {
        let g = Conv2dGeometry::new(3, 1, 3, 1, 1);
        assert!(im2col(&Tensor::zeros(&[1, 2, 4, 4]), &g).is_err());
    }
}
