//! Seeded random-tensor construction.
//!
//! All stochastic parts of the reproduction (weight init, device variation,
//! dataset synthesis) flow through explicitly seeded [`rand::rngs::StdRng`]
//! instances so that every experiment is bit-reproducible from its seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal, Uniform};

use crate::tensor::Tensor;

/// Creates a deterministic RNG from a 64-bit seed.
///
/// # Examples
///
/// ```
/// use rdo_tensor::rng::{seeded_rng, randn};
///
/// let mut r1 = seeded_rng(42);
/// let mut r2 = seeded_rng(42);
/// assert_eq!(randn(&[4], 0.0, 1.0, &mut r1), randn(&[4], 0.0, 1.0, &mut r2));
/// ```
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Samples a tensor of i.i.d. normal values with the given mean and
/// standard deviation.
///
/// # Panics
///
/// Panics if `std` is negative or not finite.
pub fn randn(dims: &[usize], mean: f32, std: f32, rng: &mut impl Rng) -> Tensor {
    let normal = Normal::new(mean, std).expect("std must be finite and non-negative");
    Tensor::from_fn(dims, |_| normal.sample(rng))
}

/// Samples a tensor of i.i.d. uniform values in `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn rand_uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
    let uni = Uniform::new(lo, hi);
    Tensor::from_fn(dims, |_| uni.sample(rng))
}

/// Kaiming/He-style init for a layer with `fan_in` inputs: normal with
/// `std = sqrt(2 / fan_in)`. The standard choice for ReLU networks.
pub fn kaiming(dims: &[usize], fan_in: usize, rng: &mut impl Rng) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    randn(dims, 0.0, std, rng)
}

/// Produces a random permutation of `0..n` (Fisher–Yates), used for
/// epoch shuffling.
pub fn permutation(n: usize, rng: &mut impl Rng) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let a = randn(&[16], 0.0, 1.0, &mut seeded_rng(7));
        let b = randn(&[16], 0.0, 1.0, &mut seeded_rng(7));
        let c = randn(&[16], 0.0, 1.0, &mut seeded_rng(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn randn_moments_plausible() {
        let t = randn(&[20_000], 1.5, 2.0, &mut seeded_rng(1));
        assert!((t.mean() - 1.5).abs() < 0.1, "mean {}", t.mean());
        let var = t.map(|x| (x - 1.5) * (x - 1.5)).mean();
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn uniform_in_range() {
        let t = rand_uniform(&[1000], -2.0, 3.0, &mut seeded_rng(2));
        assert!(t.min() >= -2.0 && t.max() < 3.0);
    }

    #[test]
    fn kaiming_scales_with_fan_in() {
        let wide = kaiming(&[10_000], 1000, &mut seeded_rng(3));
        let narrow = kaiming(&[10_000], 10, &mut seeded_rng(3));
        assert!(wide.norm_sq() < narrow.norm_sq());
    }

    #[test]
    fn permutation_is_a_bijection() {
        let p = permutation(100, &mut seeded_rng(4));
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
