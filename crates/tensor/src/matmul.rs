//! Matrix multiplication entry points.
//!
//! The whole stack funnels its heavy math through this module:
//! convolution lowers to [`matmul`] via im2col, the crossbar simulator's
//! "effective weight" fast path is a plain matrix product, and the
//! trainer's backward passes are `NT`/`TN` products. Since PR 2 the
//! arithmetic itself lives in [`crate::microkernel`] — a register-tiled,
//! panel-packed kernel family that the compiler autovectorizes — and this
//! module provides the shape-checked [`Tensor`] API plus slice entry
//! points over it.
//!
//! Above [`PAR_MIN_MACS`] multiply–accumulates, [`matmul_into`] engages
//! worker threads (`RDO_THREADS` controls the count; see
//! [`crate::parallel`]). The microkernel partitions output rows into
//! whole register tiles, so the product is **bitwise identical at every
//! thread count**. The retired cache-blocked scalar kernel is kept as
//! [`matmul_into_scalar`] for reference and benchmarking; its operation
//! order differs from the microkernel's, so absolute values may differ
//! from it within normal f32 tolerance.

use std::cell::RefCell;

use crate::error::{Result, TensorError};
use crate::microkernel::{gemm_nn, gemm_nt, gemm_tn};
use crate::parallel::available_threads;
use crate::scratch::Scratch;
use crate::tensor::Tensor;

/// Cache block size (elements) of the legacy scalar kernel.
const BLOCK: usize = 64;

/// Multiply–accumulate count (`m·k·n`) above which the auto-threaded
/// entry points use worker threads. Below it, thread spawn/join overhead
/// dominates.
pub const PAR_MIN_MACS: usize = 1 << 21;

thread_local! {
    /// Packing scratch for the convenience entry points, so repeated
    /// [`matmul`]/[`matmul_into`] calls are allocation-free after warm-up.
    /// Callers that manage buffers long-term (layers, trainers) hold
    /// their own [`Scratch`] and call the `microkernel` API directly.
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

fn with_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// The worker-thread count the auto-threaded entry points use for an
/// `m·k·n` product: `RDO_THREADS` (via [`available_threads`]) once the
/// product exceeds [`PAR_MIN_MACS`] multiply–accumulates, serial below.
pub fn auto_threads(m: usize, k: usize, n: usize) -> usize {
    if m.saturating_mul(k).saturating_mul(n) >= PAR_MIN_MACS {
        available_threads()
    } else {
        1
    }
}

/// Multiplies two rank-2 tensors: `C = A (m×k) · B (k×n)`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if either operand is not a matrix
/// and [`TensorError::ShapeMismatch`] if the inner dimensions differ.
///
/// # Examples
///
/// ```
/// use rdo_tensor::{matmul, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2])?;
/// assert_eq!(matmul(&a, &i)?, a);
/// # Ok::<(), rdo_tensor::TensorError>(())
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_rank2("matmul", a)?;
    check_rank2("matmul", b)?;
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    matmul_into(a.data(), b.data(), &mut out, m, k, n);
    Tensor::from_vec(out, &[m, n])
}

/// Raw microkernel matmul on slices: `c += a (m×k) · b (k×n)`.
///
/// `c` must be zero-initialized by the caller if a pure product is wanted.
/// Exposed so callers that manage their own buffers (the trainer's backward
/// pass) avoid reallocation.
///
/// Products above [`PAR_MIN_MACS`] multiply–accumulates are partitioned
/// over worker threads (thread count from [`available_threads`], i.e. the
/// `RDO_THREADS` knob); results are bitwise identical to the serial kernel
/// either way. Use [`matmul_into_serial`] or [`matmul_into_threads`] to
/// force a specific path.
///
/// # Panics
///
/// Panics if the slice lengths do not match `m*k`, `k*n` and `m*n`.
pub fn matmul_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    matmul_into_threads(a, b, c, m, k, n, auto_threads(m, k, n));
}

/// The serial path of the microkernel: `c += a · b`, always on the
/// calling thread, bitwise identical to every threaded invocation.
///
/// # Panics
///
/// Panics if the slice lengths do not match `m*k`, `k*n` and `m*n`.
pub fn matmul_into_serial(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    matmul_into_threads(a, b, c, m, k, n, 1);
}

/// Microkernel matmul on up to `threads` scoped worker threads (`0` and
/// `1` both mean serial): `c += a (m×k) · b (k×n)`.
///
/// The output rows are partitioned into whole register tiles anchored at
/// row 0, so every tile is computed in exactly the same operation order
/// whichever worker runs it — the result is **bitwise identical for any
/// thread count** (see [`crate::microkernel`]).
///
/// # Panics
///
/// Panics if the slice lengths do not match `m*k`, `k*n` and `m*n`.
pub fn matmul_into_threads(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    with_scratch(|s| gemm_nn(a, b, c, m, k, n, threads.max(1), s));
}

/// `c += a (m×k) · bt (n×k)ᵀ` — the right operand supplied transposed,
/// auto-threaded. This is the layer-forward orientation (`y = x·Wᵀ` with
/// `W` stored `(out, in)`); packing reads `bt` directly, so no transposed
/// copy of the weights is ever materialized.
///
/// # Panics
///
/// Panics if the slice lengths do not match `m*k`, `n*k` and `m*n`.
pub fn matmul_nt_into(a: &[f32], bt: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    with_scratch(|s| gemm_nt(a, bt, c, m, k, n, auto_threads(m, k, n), s));
}

/// `c += at (k×m)ᵀ · b (k×n)` — the left operand supplied transposed,
/// auto-threaded. This is the weight-gradient orientation
/// (`dW += gᵀ·x`), accumulating straight into the gradient buffer.
///
/// # Panics
///
/// Panics if the slice lengths do not match `k*m`, `k*n` and `m*n`.
pub fn matmul_tn_into(at: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    with_scratch(|s| gemm_tn(at, b, c, m, k, n, auto_threads(m, k, n), s));
}

/// The pre-microkernel cache-blocked scalar kernel: `c += a · b` in ikj
/// order, always serial. Retained as the reference point for the
/// `BENCH_gemm.json` speedup trajectory and for cross-checking the
/// microkernel in tests; not used by any production path.
///
/// # Panics
///
/// Panics if the slice lengths do not match `m*k`, `k*n` and `m*n`.
pub fn matmul_into_scalar(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(b.len(), k * n, "rhs length");
    assert_eq!(c.len(), m * n, "out length");
    for i0 in (0..m).step_by(BLOCK) {
        let i1 = (i0 + BLOCK).min(m);
        for k0 in (0..k).step_by(BLOCK) {
            let k1 = (k0 + BLOCK).min(k);
            for i in i0..i1 {
                let crow = &mut c[i * n..(i + 1) * n];
                for kk in k0..k1 {
                    let aik = a[i * k + kk];
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = &b[kk * n..(kk + 1) * n];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += aik * bv;
                    }
                }
            }
        }
    }
}

/// Matrix–vector product `y = A (m×k) · x (k)`, through the microkernel's
/// `n == 1` path (per-row lane-blocked dot products, threaded above
/// [`PAR_MIN_MACS`]).
///
/// # Errors
///
/// Returns a shape error if `A` is not a matrix or the lengths disagree.
pub fn matvec(a: &Tensor, x: &Tensor) -> Result<Tensor> {
    check_rank2("matvec", a)?;
    let (m, k) = (a.dims()[0], a.dims()[1]);
    if x.len() != k {
        return Err(TensorError::ShapeMismatch {
            op: "matvec",
            lhs: a.dims().to_vec(),
            rhs: x.dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; m];
    matmul_into(a.data(), x.data(), &mut out, m, k, 1);
    Tensor::from_vec(out, &[m])
}

/// Vector–matrix product `y = x (m) · A (m×n)` — the orientation RRAM
/// crossbars compute natively (inputs on wordlines, weights in the
/// array) — through the microkernel's `m == 1` path.
///
/// # Errors
///
/// Returns a shape error if `A` is not a matrix or the lengths disagree.
pub fn vecmat(x: &Tensor, a: &Tensor) -> Result<Tensor> {
    check_rank2("vecmat", a)?;
    let (m, n) = (a.dims()[0], a.dims()[1]);
    if x.len() != m {
        return Err(TensorError::ShapeMismatch {
            op: "vecmat",
            lhs: x.dims().to_vec(),
            rhs: a.dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; n];
    matmul_into(x.data(), a.data(), &mut out, 1, m, n);
    Tensor::from_vec(out, &[n])
}

/// Outer product `A = x (m) ⊗ y (n)`, an `m×n` matrix, through the
/// microkernel's rank-1 (`k == 1`) path.
pub fn outer(x: &Tensor, y: &Tensor) -> Tensor {
    let (m, n) = (x.len(), y.len());
    let mut out = vec![0.0f32; m * n];
    matmul_into(x.data(), y.data(), &mut out, m, 1, n);
    Tensor::from_vec(out, &[m, n]).expect("outer: shape is consistent by construction")
}

fn check_rank2(op: &'static str, t: &Tensor) -> Result<()> {
    if t.shape().rank() != 2 {
        return Err(TensorError::RankMismatch { op, expected: 2, actual: t.shape().rank() });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        Tensor::from_fn(&[m, n], |idx| {
            let (i, j) = (idx / n, idx % n);
            (0..k).map(|kk| a.data()[i * k + kk] * b.data()[kk * n + j]).sum()
        })
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn blocked_matches_naive_beyond_block_size() {
        let (m, k, n) = (70, 65, 67); // > BLOCK to cross tile boundaries
        let a = Tensor::from_fn(&[m, k], |i| ((i * 7919) % 13) as f32 - 6.0);
        let b = Tensor::from_fn(&[k, n], |i| ((i * 104729) % 11) as f32 - 5.0);
        let fast = matmul(&a, &b).unwrap();
        let slow = naive(&a, &b);
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn microkernel_matches_legacy_scalar_kernel() {
        let (m, k, n) = (33, 129, 21);
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 7919) % 13) as f32 * 0.37 - 2.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 104729) % 11) as f32 * 0.21 - 1.0).collect();
        let mut new = vec![0.0f32; m * n];
        matmul_into_serial(&a, &b, &mut new, m, k, n);
        let mut old = vec![0.0f32; m * n];
        matmul_into_scalar(&a, &b, &mut old, m, k, n);
        for (x, y) in new.iter().zip(&old) {
            assert!((x - y).abs() < 1e-3 * y.abs().max(1.0), "{x} vs {y}");
        }
    }

    #[test]
    fn inner_dim_mismatch_rejected() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn matvec_and_vecmat_agree_with_matmul() {
        let a = Tensor::from_fn(&[4, 5], |i| i as f32 * 0.5 - 3.0);
        let x = Tensor::from_fn(&[5], |i| i as f32 - 2.0);
        let y = matvec(&a, &x).unwrap();
        let xm = x.reshape(&[5, 1]).unwrap();
        let y2 = matmul(&a, &xm).unwrap();
        assert_eq!(y.data(), y2.data(), "matvec must share the kernel's n==1 path");

        let v = Tensor::from_fn(&[4], |i| 1.0 + i as f32);
        let z = vecmat(&v, &a).unwrap();
        let vm = v.reshape(&[1, 4]).unwrap();
        let z2 = matmul(&vm, &a).unwrap();
        assert_eq!(z.data(), z2.data(), "vecmat must share the kernel's m==1 path");
    }

    #[test]
    fn matvec_vecmat_degenerate_shapes() {
        // single row / single column / single element matrices
        let a1 = Tensor::from_vec(vec![2.0, 3.0], &[1, 2]).unwrap();
        let y = matvec(&a1, &Tensor::from_vec(vec![4.0, 5.0], &[2]).unwrap()).unwrap();
        assert_eq!(y.data(), &[23.0]);
        let a2 = Tensor::from_vec(vec![2.0, 3.0], &[2, 1]).unwrap();
        let y = matvec(&a2, &Tensor::from_vec(vec![4.0], &[1]).unwrap()).unwrap();
        assert_eq!(y.data(), &[8.0, 12.0]);
        let z = vecmat(&Tensor::from_vec(vec![4.0], &[1]).unwrap(), &a1).unwrap();
        assert_eq!(z.data(), &[8.0, 12.0]);
        let z = vecmat(&Tensor::from_vec(vec![4.0, 5.0], &[2]).unwrap(), &a2).unwrap();
        assert_eq!(z.data(), &[23.0]);
        let one = Tensor::from_vec(vec![3.0], &[1, 1]).unwrap();
        assert_eq!(
            matvec(&one, &Tensor::from_vec(vec![2.0], &[1]).unwrap()).unwrap().data(),
            &[6.0]
        );
        // shape mismatches still rejected
        assert!(matvec(&a1, &Tensor::zeros(&[3])).is_err());
        assert!(vecmat(&Tensor::zeros(&[3]), &a1).is_err());
    }

    #[test]
    fn nt_and_tn_entry_points_match_explicit_transpose() {
        let (m, k, n) = (7, 11, 5);
        let a = Tensor::from_fn(&[m, k], |i| (i % 9) as f32 * 0.4 - 1.5);
        let b = Tensor::from_fn(&[k, n], |i| (i % 7) as f32 * 0.3 - 0.9);
        let want = matmul(&a, &b).unwrap();

        let bt = b.transpose2().unwrap();
        let mut c = vec![0.0f32; m * n];
        matmul_nt_into(a.data(), bt.data(), &mut c, m, k, n);
        assert_eq!(c, want.data(), "NT packing must not change values");

        let at = a.transpose2().unwrap();
        let mut c = vec![0.0f32; m * n];
        matmul_tn_into(at.data(), b.data(), &mut c, m, k, n);
        assert_eq!(c, want.data(), "TN packing must not change values");
    }

    #[test]
    fn outer_product_shape_and_values() {
        let x = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let y = Tensor::from_vec(vec![3.0, 4.0, 5.0], &[3]).unwrap();
        let o = outer(&x, &y);
        assert_eq!(o.dims(), &[2, 3]);
        assert_eq!(o.data(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn threaded_matches_serial_bitwise() {
        let (m, k, n) = (37, 29, 31); // awkward sizes, uneven chunks
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 7919) % 13) as f32 * 0.37 - 2.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 104729) % 11) as f32 * 0.21 - 1.0).collect();
        let mut serial = vec![0.0f32; m * n];
        matmul_into_serial(&a, &b, &mut serial, m, k, n);
        for threads in [0, 1, 2, 3, 5, 8, 64] {
            let mut par = vec![0.0f32; m * n];
            matmul_into_threads(&a, &b, &mut par, m, k, n, threads);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn threaded_accumulates_into_existing_output() {
        // the `c += A·B` contract must survive row partitioning
        let (m, k, n) = (5, 4, 3);
        let a: Vec<f32> = (0..m * k).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32) * 0.5).collect();
        let mut serial = vec![1.0f32; m * n];
        matmul_into_serial(&a, &b, &mut serial, m, k, n);
        let mut par = vec![1.0f32; m * n];
        matmul_into_threads(&a, &b, &mut par, m, k, n, 4);
        assert_eq!(par, serial);
    }

    #[test]
    fn threaded_single_row_and_degenerate_shapes() {
        let a = vec![1.0f32, 2.0];
        let b = vec![3.0f32, 4.0, 5.0, 6.0, 7.0, 8.0];
        let mut c = vec![0.0f32; 3];
        matmul_into_threads(&a, &b, &mut c, 1, 2, 3, 8);
        assert_eq!(c, vec![3.0 + 2.0 * 6.0, 4.0 + 2.0 * 7.0, 5.0 + 2.0 * 8.0]);
        // k = 0: nothing accumulated
        let mut c0 = vec![9.0f32; 4];
        matmul_into_threads(&[], &[], &mut c0, 2, 0, 2, 4);
        assert_eq!(c0, vec![9.0; 4]);
        // m = 0 / n = 0: no output, must not panic
        matmul_into_threads(&[], &[], &mut [], 0, 3, 0, 4);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::from_fn(&[3, 3], |i| i as f32);
        let id = Tensor::from_fn(&[3, 3], |i| if i / 3 == i % 3 { 1.0 } else { 0.0 });
        assert_eq!(matmul(&a, &id).unwrap(), a);
        assert_eq!(matmul(&id, &a).unwrap(), a);
    }
}
