//! Matrix multiplication kernels.
//!
//! The whole stack funnels its heavy math through these two functions:
//! convolution lowers to [`matmul`] via im2col, and the crossbar simulator's
//! "effective weight" fast path is a plain matrix product. The kernel is a
//! cache-blocked ikj loop — no SIMD intrinsics, but good enough to train the
//! scaled networks on one CPU core.
//!
//! Above [`PAR_MIN_MACS`] multiply–accumulates, [`matmul_into`] partitions
//! the output rows over scoped worker threads (`RDO_THREADS` controls the
//! count; see [`crate::parallel`]). Each row is accumulated in exactly the
//! serial kernel's operation order, so the parallel product is bitwise
//! identical to the serial one.

use crate::error::{Result, TensorError};
use crate::parallel::available_threads;
use crate::tensor::Tensor;

/// Cache block size (elements). 64×64 f32 tiles fit comfortably in L1/L2.
const BLOCK: usize = 64;

/// Multiply–accumulate count (`m·k·n`) above which [`matmul_into`] uses
/// worker threads. Below it, thread spawn/join overhead dominates.
pub const PAR_MIN_MACS: usize = 1 << 21;

/// Multiplies two rank-2 tensors: `C = A (m×k) · B (k×n)`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if either operand is not a matrix
/// and [`TensorError::ShapeMismatch`] if the inner dimensions differ.
///
/// # Examples
///
/// ```
/// use rdo_tensor::{matmul, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2])?;
/// assert_eq!(matmul(&a, &i)?, a);
/// # Ok::<(), rdo_tensor::TensorError>(())
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_rank2("matmul", a)?;
    check_rank2("matmul", b)?;
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    matmul_into(a.data(), b.data(), &mut out, m, k, n);
    Tensor::from_vec(out, &[m, n])
}

/// Raw blocked matmul on slices: `c += a (m×k) · b (k×n)`.
///
/// `c` must be zero-initialized by the caller if a pure product is wanted.
/// Exposed so callers that manage their own buffers (the trainer's backward
/// pass) avoid reallocation.
///
/// Products above [`PAR_MIN_MACS`] multiply–accumulates are partitioned by
/// output row over worker threads (thread count from [`available_threads`],
/// i.e. the `RDO_THREADS` knob); results are bitwise identical to the
/// serial kernel either way. Use [`matmul_into_serial`] or
/// [`matmul_into_threads`] to force a specific path.
///
/// # Panics
///
/// Panics if the slice lengths do not match `m*k`, `k*n` and `m*n`.
pub fn matmul_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let threads = if m >= 2 && m.saturating_mul(k).saturating_mul(n) >= PAR_MIN_MACS {
        available_threads()
    } else {
        1
    };
    matmul_into_threads(a, b, c, m, k, n, threads);
}

/// The serial cache-blocked kernel behind [`matmul_into`]: `c += a · b`,
/// always on the calling thread.
///
/// # Panics
///
/// Panics if the slice lengths do not match `m*k`, `k*n` and `m*n`.
pub fn matmul_into_serial(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(b.len(), k * n, "rhs length");
    assert_eq!(c.len(), m * n, "out length");
    for i0 in (0..m).step_by(BLOCK) {
        let i1 = (i0 + BLOCK).min(m);
        for k0 in (0..k).step_by(BLOCK) {
            let k1 = (k0 + BLOCK).min(k);
            for i in i0..i1 {
                let crow = &mut c[i * n..(i + 1) * n];
                for kk in k0..k1 {
                    let aik = a[i * k + kk];
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = &b[kk * n..(kk + 1) * n];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += aik * bv;
                    }
                }
            }
        }
    }
}

/// Row-partitioned parallel matmul: `c += a (m×k) · b (k×n)` on up to
/// `threads` scoped worker threads (`0` and `1` both mean serial).
///
/// The output rows are split into contiguous chunks, one worker per chunk;
/// every row is accumulated by the same blocked kernel in the same
/// operation order as [`matmul_into_serial`], so the result is bitwise
/// identical for any thread count.
///
/// # Panics
///
/// Panics if the slice lengths do not match `m*k`, `k*n` and `m*n`.
pub fn matmul_into_threads(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(b.len(), k * n, "rhs length");
    assert_eq!(c.len(), m * n, "out length");
    let threads = threads.clamp(1, m.max(1));
    if threads == 1 || n == 0 || k == 0 {
        // k == 0 adds nothing; n == 0 has no output. Either way the serial
        // kernel handles the degenerate shape without chunking by zero.
        matmul_into_serial(a, b, c, m, k, n);
        return;
    }
    let rows_per = m.div_ceil(threads);
    std::thread::scope(|s| {
        for (t, c_chunk) in c.chunks_mut(rows_per * n).enumerate() {
            let r0 = t * rows_per;
            let rows = c_chunk.len() / n;
            let a_part = &a[r0 * k..(r0 + rows) * k];
            s.spawn(move || matmul_into_serial(a_part, b, c_chunk, rows, k, n));
        }
    });
}

/// Matrix–vector product `y = A (m×k) · x (k)`.
///
/// # Errors
///
/// Returns a shape error if `A` is not a matrix or the lengths disagree.
pub fn matvec(a: &Tensor, x: &Tensor) -> Result<Tensor> {
    check_rank2("matvec", a)?;
    let (m, k) = (a.dims()[0], a.dims()[1]);
    if x.len() != k {
        return Err(TensorError::ShapeMismatch {
            op: "matvec",
            lhs: a.dims().to_vec(),
            rhs: x.dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; m];
    for (i, o) in out.iter_mut().enumerate() {
        let row = &a.data()[i * k..(i + 1) * k];
        *o = row.iter().zip(x.data()).map(|(&w, &v)| w * v).sum();
    }
    Tensor::from_vec(out, &[m])
}

/// Vector–matrix product `y = x (m) · A (m×n)` — the orientation RRAM
/// crossbars compute natively (inputs on wordlines, weights in the array).
///
/// # Errors
///
/// Returns a shape error if `A` is not a matrix or the lengths disagree.
pub fn vecmat(x: &Tensor, a: &Tensor) -> Result<Tensor> {
    check_rank2("vecmat", a)?;
    let (m, n) = (a.dims()[0], a.dims()[1]);
    if x.len() != m {
        return Err(TensorError::ShapeMismatch {
            op: "vecmat",
            lhs: x.dims().to_vec(),
            rhs: a.dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; n];
    for (i, &xv) in x.data().iter().enumerate() {
        if xv == 0.0 {
            continue;
        }
        let row = &a.data()[i * n..(i + 1) * n];
        for (o, &w) in out.iter_mut().zip(row) {
            *o += xv * w;
        }
    }
    Tensor::from_vec(out, &[n])
}

/// Outer product `A = x (m) ⊗ y (n)`, an `m×n` matrix.
pub fn outer(x: &Tensor, y: &Tensor) -> Tensor {
    let (m, n) = (x.len(), y.len());
    let mut out = vec![0.0f32; m * n];
    for (i, &xv) in x.data().iter().enumerate() {
        for (j, &yv) in y.data().iter().enumerate() {
            out[i * n + j] = xv * yv;
        }
    }
    Tensor::from_vec(out, &[m, n]).expect("outer: shape is consistent by construction")
}

fn check_rank2(op: &'static str, t: &Tensor) -> Result<()> {
    if t.shape().rank() != 2 {
        return Err(TensorError::RankMismatch { op, expected: 2, actual: t.shape().rank() });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        Tensor::from_fn(&[m, n], |idx| {
            let (i, j) = (idx / n, idx % n);
            (0..k).map(|kk| a.data()[i * k + kk] * b.data()[kk * n + j]).sum()
        })
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn blocked_matches_naive_beyond_block_size() {
        let (m, k, n) = (70, 65, 67); // > BLOCK to cross tile boundaries
        let a = Tensor::from_fn(&[m, k], |i| ((i * 7919) % 13) as f32 - 6.0);
        let b = Tensor::from_fn(&[k, n], |i| ((i * 104729) % 11) as f32 - 5.0);
        let fast = matmul(&a, &b).unwrap();
        let slow = naive(&a, &b);
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn inner_dim_mismatch_rejected() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn matvec_and_vecmat_agree_with_matmul() {
        let a = Tensor::from_fn(&[4, 5], |i| i as f32 * 0.5 - 3.0);
        let x = Tensor::from_fn(&[5], |i| i as f32 - 2.0);
        let y = matvec(&a, &x).unwrap();
        let xm = x.reshape(&[5, 1]).unwrap();
        let y2 = matmul(&a, &xm).unwrap();
        assert_eq!(y.data(), y2.data());

        let v = Tensor::from_fn(&[4], |i| 1.0 + i as f32);
        let z = vecmat(&v, &a).unwrap();
        let vm = v.reshape(&[1, 4]).unwrap();
        let z2 = matmul(&vm, &a).unwrap();
        for (p, q) in z.data().iter().zip(z2.data()) {
            assert!((p - q).abs() < 1e-4);
        }
    }

    #[test]
    fn outer_product_shape_and_values() {
        let x = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let y = Tensor::from_vec(vec![3.0, 4.0, 5.0], &[3]).unwrap();
        let o = outer(&x, &y);
        assert_eq!(o.dims(), &[2, 3]);
        assert_eq!(o.data(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn threaded_matches_serial_bitwise() {
        let (m, k, n) = (37, 29, 31); // awkward sizes, uneven chunks
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 7919) % 13) as f32 * 0.37 - 2.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 104729) % 11) as f32 * 0.21 - 1.0).collect();
        let mut serial = vec![0.0f32; m * n];
        matmul_into_serial(&a, &b, &mut serial, m, k, n);
        for threads in [0, 1, 2, 3, 5, 8, 64] {
            let mut par = vec![0.0f32; m * n];
            matmul_into_threads(&a, &b, &mut par, m, k, n, threads);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn threaded_accumulates_into_existing_output() {
        // the `c += A·B` contract must survive row partitioning
        let (m, k, n) = (5, 4, 3);
        let a: Vec<f32> = (0..m * k).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32) * 0.5).collect();
        let mut serial = vec![1.0f32; m * n];
        matmul_into_serial(&a, &b, &mut serial, m, k, n);
        let mut par = vec![1.0f32; m * n];
        matmul_into_threads(&a, &b, &mut par, m, k, n, 4);
        assert_eq!(par, serial);
    }

    #[test]
    fn threaded_single_row_and_degenerate_shapes() {
        let a = vec![1.0f32, 2.0];
        let b = vec![3.0f32, 4.0, 5.0, 6.0, 7.0, 8.0];
        let mut c = vec![0.0f32; 3];
        matmul_into_threads(&a, &b, &mut c, 1, 2, 3, 8);
        assert_eq!(c, vec![3.0 + 2.0 * 6.0, 4.0 + 2.0 * 7.0, 5.0 + 2.0 * 8.0]);
        // k = 0: nothing accumulated
        let mut c0 = vec![9.0f32; 4];
        matmul_into_threads(&[], &[], &mut c0, 2, 0, 2, 4);
        assert_eq!(c0, vec![9.0; 4]);
        // m = 0 / n = 0: no output, must not panic
        matmul_into_threads(&[], &[], &mut [], 0, 3, 0, 4);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::from_fn(&[3, 3], |i| i as f32);
        let id = Tensor::from_fn(&[3, 3], |i| if i / 3 == i % 3 { 1.0 } else { 0.0 });
        assert_eq!(matmul(&a, &id).unwrap(), a);
        assert_eq!(matmul(&id, &a).unwrap(), a);
    }
}
