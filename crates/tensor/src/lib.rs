//! # rdo-tensor
//!
//! Dense `f32` tensor substrate for the reproduction of *"Digital Offset for
//! RRAM-based Neuromorphic Computing"* (DATE 2021).
//!
//! The crate deliberately implements only what the rest of the workspace
//! needs — shapes, elementwise math, a register-tiled [`matmul()`] built on
//! the [`microkernel`] module, im2col convolution lowering and seeded
//! random construction — with no external math dependencies and no
//! `unsafe` outside the small audited core of the persistent worker
//! [`pool`], so the full stack (NN training, crossbar simulation,
//! VAWO/PWT optimization) is auditable end to end. Hot paths reuse
//! buffers through a [`Scratch`] pool instead of allocating per call,
//! and every parallel region runs on the spawn-once [`pool`] rather than
//! spawning threads per call.
//!
//! # Examples
//!
//! ```
//! use rdo_tensor::{matmul, Tensor};
//! use rdo_tensor::rng::{randn, seeded_rng};
//!
//! let mut rng = seeded_rng(1);
//! let w = randn(&[4, 3], 0.0, 1.0, &mut rng);
//! let x = Tensor::ones(&[3, 2]);
//! let y = matmul(&w, &x)?;
//! assert_eq!(y.dims(), &[4, 2]);
//! # Ok::<(), rdo_tensor::TensorError>(())
//! ```

// `deny` rather than `forbid`: the persistent worker pool's type-erased
// task pointer (`pool::TaskPtr`) is the one audited exception, opted in
// item by item with `#[allow(unsafe_code)]` and a safety argument.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod shape;
mod tensor;

pub mod conv;
pub mod matmul;
pub mod microkernel;
pub mod parallel;
pub mod pool;
pub mod qint;
pub mod rng;
pub mod scratch;

pub use conv::{col2im, col2im_into, im2col, im2col_into, Conv2dGeometry};
pub use error::{Result, TensorError};
pub use matmul::{
    auto_threads, matmul, matmul_into, matmul_into_scalar, matmul_into_serial, matmul_into_threads,
    matmul_nt_into, matmul_tn_into, matvec, outer, vecmat,
};
pub use microkernel::PackedA;
pub use parallel::{
    available_threads, parallel_map_indexed, parallel_map_indexed_scoped, resolve_threads,
};
pub use qint::{
    and_popcount, and_popcount_range, column_counts, dot_planes, dot_planes_all, dot_planes_range,
    gemm_i8_i32, gemm_i8_i32_scalar, gemv_i8_i32, mask_plane_range, popcount, popcount_range,
    BitPlanes, ColumnPlanes,
};
pub use scratch::Scratch;
pub use shape::Shape;
pub use tensor::Tensor;
