//! Worker-thread plumbing for the parallel experiment engine.
//!
//! Every parallel path in the workspace (the row-partitioned
//! [`crate::matmul::matmul_into`], `rdo_core`'s multi-cycle evaluation and
//! `rdo-bench`'s grid runner) resolves its thread count here, so a single
//! `RDO_THREADS` environment knob controls them all:
//!
//! * `RDO_THREADS` unset or `0` — use [`std::thread::available_parallelism`];
//! * `RDO_THREADS=1` — force the serial code paths (single-core
//!   reproduction mode);
//! * `RDO_THREADS=N` — use at most `N` worker threads.
//!
//! Parallelism never changes results: work is partitioned so that each
//! unit (a matrix row, a programming cycle, a grid point) is computed by
//! exactly the same code, in the same per-unit operation order, as the
//! serial path. Threads only decide *who* computes a unit, not *how*.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::pool;

/// The number of worker threads the environment asks for: `RDO_THREADS`
/// when set to a positive integer, otherwise the machine's available
/// parallelism (falling back to 1 when that cannot be determined).
pub fn available_threads() -> usize {
    match std::env::var("RDO_THREADS").ok().and_then(|s| s.parse::<usize>().ok()) {
        Some(n) if n > 0 => n,
        _ => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    }
}

/// Resolves an explicit thread request: `0` means "ask the environment"
/// (see [`available_threads`]), any positive value is taken as-is.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        available_threads()
    }
}

/// Evaluates `f(0..n)` on up to `threads` worker threads (the persistent
/// [`crate::pool`]) and returns the results in index order.
///
/// Work is distributed dynamically (an atomic cursor), so unevenly sized
/// items load-balance; the output order is always `f(0), f(1), …`
/// regardless of scheduling. With `threads <= 1` (or `n <= 1`) this is a
/// plain serial map — same closure, same order. The threaded path is
/// bitwise identical to the serial one for deterministic `f`: the cursor
/// only decides *who* computes an item, the merge is by index.
///
/// # Panics
///
/// Propagates panics from `f` (all workers finish first).
pub fn parallel_map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.min(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    // One uncontended slot per worker: each shard locks only its own.
    let outs: Vec<Mutex<Vec<(usize, T)>>> = (0..threads).map(|_| Mutex::new(Vec::new())).collect();
    pool::run(threads, |t| {
        let mut out = outs[t].lock().expect("worker output slot poisoned");
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            out.push((i, f(i)));
        }
    });
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for slot in outs {
        for (i, v) in slot.into_inner().expect("worker output slot poisoned") {
            slots[i] = Some(v);
        }
    }
    slots.into_iter().map(|v| v.expect("every index is produced exactly once")).collect()
}

/// The pre-pool reference implementation of [`parallel_map_indexed`]:
/// identical atomic-cursor distribution and index-ordered merge, but on
/// freshly spawned [`std::thread::scope`] threads per call. Retained as
/// the equivalence oracle for the pool tests and the baseline arm of the
/// sweep benchmark.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers first).
pub fn parallel_map_indexed_scoped<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.min(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut chunks: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel_map_indexed worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for chunk in &mut chunks {
        for (i, v) in chunk.drain(..) {
            slots[i] = Some(v);
        }
    }
    slots.into_iter().map(|v| v.expect("every index is produced exactly once")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_prefers_explicit_request() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
        assert!(available_threads() >= 1);
    }

    #[test]
    fn map_preserves_index_order() {
        for threads in [1, 2, 4, 7] {
            let out = parallel_map_indexed(23, threads, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        assert_eq!(parallel_map_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map_indexed(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = parallel_map_indexed(3, 16, |i| i as f32 * 0.5);
        assert_eq!(out, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn pool_backed_map_matches_scoped_reference() {
        for threads in [1, 2, 4, 9] {
            for n in [0usize, 1, 7, 64, 201] {
                let pooled = parallel_map_indexed(n, threads, |i| i.wrapping_mul(31) ^ 7);
                let scoped = parallel_map_indexed_scoped(n, threads, |i| i.wrapping_mul(31) ^ 7);
                assert_eq!(pooled, scoped, "n={n} threads={threads}");
            }
        }
    }
}
