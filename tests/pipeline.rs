//! End-to-end integration: train → quantize → map → program → compensate
//! → evaluate, across all five methods, checking the orderings the paper
//! reports.

use rram_digital_offset::core::{
    evaluate_cycles, mean_core_gradients, CycleEvalConfig, MappedNetwork, Method, OffsetConfig,
    PwtConfig,
};
use rram_digital_offset::nn::{evaluate, fit, Linear, Relu, Sequential, TrainConfig};
use rram_digital_offset::rram::{CellKind, DeviceLut, VariationModel};
use rram_digital_offset::tensor::rng::{randn, seeded_rng};
use rram_digital_offset::tensor::Tensor;

fn trained_problem(seed: u64) -> (Sequential, Tensor, Vec<usize>, Tensor, Vec<usize>, f32) {
    let mut rng = seeded_rng(seed);
    let n = 400;
    let x = randn(&[n, 8], 0.0, 1.0, &mut rng);
    let labels: Vec<usize> = (0..n)
        .map(|i| {
            let a = x.data()[i * 8] > 0.0;
            let b = x.data()[i * 8 + 1] > 0.0;
            (a as usize) * 2 + b as usize
        })
        .collect();
    let split = 300;
    let train_x = Tensor::from_vec(x.data()[..split * 8].to_vec(), &[split, 8]).unwrap();
    let test_x = Tensor::from_vec(x.data()[split * 8..].to_vec(), &[n - split, 8]).unwrap();
    let (train_y, test_y) = (labels[..split].to_vec(), labels[split..].to_vec());

    let mut net = Sequential::new();
    net.push(Linear::new(8, 96, &mut rng));
    net.push(Relu::new());
    net.push(Linear::new(96, 4, &mut rng));
    fit(&mut net, &train_x, &train_y, &TrainConfig { epochs: 30, lr: 0.1, ..Default::default() })
        .unwrap();
    let ideal = evaluate(&mut net, &test_x, &test_y, 64).unwrap();
    (net, train_x, train_y, test_x, test_y, ideal)
}

fn accuracy_of(
    net: &mut Sequential,
    method: Method,
    sigma: f64,
    m: usize,
    train: (&Tensor, &[usize]),
    test: (&Tensor, &[usize]),
    seed: u64,
) -> f32 {
    let cfg = OffsetConfig::paper(CellKind::Slc, sigma, m).unwrap();
    let lut = DeviceLut::analytic(&VariationModel::per_weight(sigma), &cfg.codec).unwrap();
    let grads = if method.uses_vawo() {
        Some(mean_core_gradients(net, train.0, train.1, 64).unwrap())
    } else {
        None
    };
    let mut mapped = MappedNetwork::map(net, method, &cfg, &lut, grads.as_deref()).unwrap();
    let eval = CycleEvalConfig {
        cycles: 3,
        seed,
        pwt: PwtConfig { epochs: 6, ..Default::default() },
        batch_size: 64,
        threads: 1,
        qint: false,
    };
    evaluate_cycles(&mut mapped, Some(train), test.0, test.1, &eval).unwrap().mean
}

#[test]
fn method_ordering_matches_paper() {
    let (mut net, train_x, train_y, test_x, test_y, ideal) = trained_problem(1);
    assert!(ideal >= 0.85, "training failed: {ideal}");
    let sigma = 0.5;
    let m = 16;
    let run = |net: &mut Sequential, method| {
        accuracy_of(net, method, sigma, m, (&train_x, &train_y), (&test_x, &test_y), 100)
    };
    let plain = run(&mut net, Method::Plain);
    let vawo_star = run(&mut net, Method::VawoStar);
    let combined = run(&mut net, Method::VawoStarPwt);

    // the paper's headline orderings
    assert!(vawo_star > plain + 0.05, "VAWO* {vawo_star} should clearly beat plain {plain}");
    assert!(
        combined >= vawo_star - 0.02,
        "combined {combined} should not lose to VAWO* {vawo_star}"
    );
    assert!(combined > ideal - 0.25, "combined {combined} should be near ideal {ideal}");
    assert!(combined > plain + 0.2, "combined {combined} should recover far above plain {plain}");
}

#[test]
fn combined_method_is_deterministic_per_seed() {
    let (mut net, train_x, train_y, test_x, test_y, _) = trained_problem(2);
    let a = accuracy_of(
        &mut net,
        Method::VawoStarPwt,
        0.5,
        16,
        (&train_x, &train_y),
        (&test_x, &test_y),
        7,
    );
    let b = accuracy_of(
        &mut net,
        Method::VawoStarPwt,
        0.5,
        16,
        (&train_x, &train_y),
        (&test_x, &test_y),
        7,
    );
    assert_eq!(a, b, "same seed must reproduce the same accuracy");
}

#[test]
fn zero_variation_keeps_every_method_near_ideal() {
    let (mut net, train_x, train_y, test_x, test_y, ideal) = trained_problem(3);
    for method in [Method::Plain, Method::VawoStar, Method::VawoStarPwt] {
        let acc =
            accuracy_of(&mut net, method, 0.0, 16, (&train_x, &train_y), (&test_x, &test_y), 5);
        assert!(
            acc > ideal - 0.05,
            "{method} at sigma 0: {acc} vs ideal {ideal} (only 8-bit quantization)"
        );
    }
}

#[test]
fn finer_granularity_helps_vawo() {
    let (mut net, train_x, train_y, test_x, test_y, _) = trained_problem(4);
    // average over a couple of seeds to damp cycle noise
    let mut acc = |m: usize| -> f32 {
        (0..2)
            .map(|s| {
                accuracy_of(
                    &mut net,
                    Method::Vawo,
                    0.5,
                    m,
                    (&train_x, &train_y),
                    (&test_x, &test_y),
                    40 + s,
                )
            })
            .sum::<f32>()
            / 2.0
    };
    let fine = acc(16);
    let coarse = acc(128);
    assert!(
        fine >= coarse - 0.05,
        "m=16 ({fine}) should not be clearly worse than m=128 ({coarse})"
    );
}
