//! The paper's own worked examples, reproduced against the library.

use rram_digital_offset::core::{GroupLayout, OffsetConfig, OffsetState};
use rram_digital_offset::rram::CellKind;
use rram_digital_offset::tensor::{vecmat, Tensor};

/// §II's weight-shift example: "weights initially in the range
/// [−120, 135] are shifted to the range [0, 255] by adding each with
/// 120. After the calculation by the crossbar, we should subtract
/// 120·Σxᵢ from the result."
#[test]
fn section_ii_shift_example() {
    use rram_digital_offset::nn::quant::quantize_weights;
    let w = Tensor::from_vec(vec![-120.0, 0.0, 135.0], &[3]).unwrap();
    let q = quantize_weights(&w, 8).unwrap();
    assert_eq!(q.params.shift, 120);
    // crossbar computes Σ x·(w+shift); digital subtraction of
    // shift·Σx recovers the signed dot product
    let x = [2.0f32, 5.0, 1.0];
    let analog: f32 = x.iter().zip(q.levels.data()).map(|(a, b)| a * b).sum();
    let sum_x: f32 = x.iter().sum();
    let recovered = q.params.delta * (analog - q.params.shift as f32 * sum_x);
    let exact: f32 = x.iter().zip(w.data()).map(|(a, b)| a * b).sum();
    assert!((recovered - exact).abs() < q.params.delta * 2.0, "{recovered} vs {exact}");
}

/// Eq. 1 / Fig. 2(c): with inputs (3, 0, 1) and a per-column offset b,
/// the digital compensation is exactly `b·Σxᵢ` — "(3+0+1)·(−0.3) = −1.2
/// for the 1st column and −1.6 for the 2nd".
#[test]
fn fig2_offset_compensation() {
    let cfg = OffsetConfig::paper(CellKind::Slc, 0.5, 16).unwrap();
    let layout = GroupLayout::new(3, 2, &cfg).unwrap(); // one group per column
    let state = OffsetState::from_parts(
        layout,
        vec![-0.3, -0.4], // the offsets of Fig. 2(c)
        vec![false, false],
    )
    .unwrap();
    // arbitrary noisy crossbar weights
    let crw = Tensor::from_vec(vec![3.3, 6.4, 0.1, 2.2, 1.2, 4.1], &[3, 2]).unwrap();
    let x = Tensor::from_vec(vec![3.0, 0.0, 1.0], &[3]).unwrap();

    let nrw = state.apply(&crw, 255.0).unwrap();
    let with_offsets = vecmat(&x, &nrw).unwrap();
    let without = vecmat(&x, &crw).unwrap();
    let comp1 = with_offsets.data()[0] - without.data()[0];
    let comp2 = with_offsets.data()[1] - without.data()[1];
    assert!((comp1 - (3.0 + 0.0 + 1.0) * -0.3).abs() < 1e-5, "col 1: {comp1}");
    assert!((comp1 - -1.2).abs() < 1e-5);
    assert!((comp2 - -1.6).abs() < 1e-5, "col 2: {comp2}");
}

/// Fig. 3's weight-domain walk: a CRW of 2.1 with offset b = 1 yields an
/// NRW of 3.1.
#[test]
fn fig3_nrw_from_crw_and_offset() {
    let cfg = OffsetConfig::paper(CellKind::Slc, 0.5, 16).unwrap();
    let layout = GroupLayout::new(1, 1, &cfg).unwrap();
    let state = OffsetState::from_parts(layout, vec![1.0], vec![false]).unwrap();
    let crw = Tensor::from_vec(vec![2.1], &[1, 1]).unwrap();
    let nrw = state.apply(&crw, 255.0).unwrap();
    assert!((nrw.data()[0] - 3.1).abs() < 1e-6);
}

/// Eq. 7's decomposition: the column output equals the raw crossbar term
/// plus `Σᵢ bᵢ·Σⱼ x_{im+j}` — verified for a 128-row column at m = 16
/// (k = 8 groups).
#[test]
fn eq7_group_decomposition() {
    let cfg = OffsetConfig::paper(CellKind::Slc, 0.5, 16).unwrap();
    let layout = GroupLayout::new(128, 1, &cfg).unwrap();
    assert_eq!(layout.row_bounds().len(), 8); // k = N/m
    let offsets: Vec<f32> = (0..8).map(|i| (i as f32) - 3.5).collect();
    let state = OffsetState::from_parts(layout.clone(), offsets.clone(), vec![false; 8]).unwrap();

    let crw = Tensor::from_fn(&[128, 1], |i| ((i * 13) % 97) as f32 * 0.1);
    let x = Tensor::from_fn(&[128], |i| ((i * 7) % 11) as f32);

    let z = vecmat(&x, &state.apply(&crw, 255.0).unwrap()).unwrap().data()[0];
    let raw = vecmat(&x, &crw).unwrap().data()[0];
    let offset_term: f32 = layout
        .row_bounds()
        .iter()
        .zip(&offsets)
        .map(|(&(a, b), &bi)| bi * x.data()[a..b].iter().sum::<f32>())
        .sum();
    assert!(
        (z - (raw + offset_term)).abs() < 1e-2 * z.abs().max(1.0),
        "{z} vs {}",
        raw + offset_term
    );
}

/// §III-C's complement identity:
/// `Σ wᵢ*xᵢ = (2ⁿ−1)Σxᵢ − Σ w̄ᵢ*xᵢ`.
#[test]
fn complement_dot_product_identity() {
    use rram_digital_offset::core::complement_weight;
    let w: Vec<u32> = vec![3, 200, 128, 0, 255, 17];
    let x: Vec<f64> = vec![1.0, 0.5, 2.0, 3.0, 0.0, 1.5];
    let direct: f64 = w.iter().zip(&x).map(|(&wi, &xi)| wi as f64 * xi).sum();
    let sum_x: f64 = x.iter().sum();
    let complemented: f64 =
        w.iter().zip(&x).map(|(&wi, &xi)| complement_weight(wi, 8) as f64 * xi).sum();
    let via_identity = 255.0 * sum_x - complemented;
    assert!((direct - via_identity).abs() < 1e-9);
}

/// Eq. 9's register-count example from §IV-B2: 256 registers per
/// crossbar at m = 16 and 32 at m = 128 (S = 128, l = 32).
#[test]
fn eq9_register_counts() {
    use rram_digital_offset::arch::IsaacTile;
    let tile = IsaacTile::paper();
    assert_eq!(tile.offset_registers_per_crossbar(16), 256);
    assert_eq!(tile.offset_registers_per_crossbar(128), 32);
}
