//! A miniature Table III: this work versus DVA and PM on a small trained
//! model, including the crossbar-budget arithmetic.

use rram_digital_offset::arch::CrossbarBudget;
use rram_digital_offset::baselines::{
    evaluate_dva, evaluate_pm_cycles, train_dva, DvaConfig, PmConfig,
};
use rram_digital_offset::core::{
    evaluate_cycles, mean_core_gradients, CycleEvalConfig, MappedNetwork, Method, OffsetConfig,
    PwtConfig,
};
use rram_digital_offset::nn::{evaluate, fit, Linear, Relu, Sequential, TrainConfig};
use rram_digital_offset::rram::{CellKind, DeviceLut, VariationModel};
use rram_digital_offset::tensor::rng::{randn, seeded_rng};
use rram_digital_offset::tensor::Tensor;

fn trained_problem() -> (Sequential, Tensor, Vec<usize>, f32) {
    let mut rng = seeded_rng(77);
    let n = 320;
    let x = randn(&[n, 8], 0.0, 1.0, &mut rng);
    let labels: Vec<usize> =
        (0..n).map(|i| usize::from(x.data()[i * 8] + x.data()[i * 8 + 2] > 0.0)).collect();
    let mut net = Sequential::new();
    net.push(Linear::new(8, 24, &mut rng));
    net.push(Relu::new());
    net.push(Linear::new(24, 2, &mut rng));
    fit(&mut net, &x, &labels, &TrainConfig { epochs: 25, lr: 0.1, ..Default::default() }).unwrap();
    let ideal = evaluate(&mut net, &x, &labels, 64).unwrap();
    (net, x, labels, ideal)
}

#[test]
fn this_work_beats_baselines_with_fewer_crossbars() {
    let (mut net, x, labels, ideal) = trained_problem();
    assert!(ideal > 0.9);
    let sigma = 0.8; // the Table III operating point

    // ours: VAWO*+PWT on 4 2-bit MLCs, one crossbar
    let cfg = OffsetConfig::paper(CellKind::Mlc2, sigma, 16).unwrap();
    let lut = DeviceLut::analytic(&VariationModel::per_weight(sigma), &cfg.codec).unwrap();
    let grads = mean_core_gradients(&mut net, &x, &labels, 64).unwrap();
    let mut ours = MappedNetwork::map(&net, Method::VawoStarPwt, &cfg, &lut, Some(&grads)).unwrap();
    let eval = CycleEvalConfig {
        cycles: 3,
        seed: 3,
        pwt: PwtConfig { epochs: 4, ..Default::default() },
        batch_size: 64,
        threads: 1,
        qint: false,
    };
    let ours_acc =
        evaluate_cycles(&mut ours, Some((&x, &labels)), &x, &labels, &eval).unwrap().mean;

    // DVA: noise-trained, deployed on 8 SLCs, one crossbar, plain
    let mut dva_net = net.clone();
    train_dva(
        &mut dva_net,
        &x,
        &labels,
        &DvaConfig { train: TrainConfig { epochs: 10, lr: 0.02, ..Default::default() }, sigma },
    )
    .unwrap();
    let dva_acc = evaluate_dva(&dva_net, &x, &labels, sigma, &eval, Some(&x)).unwrap().mean;

    // PM: unary-coded two-crossbar deployment
    let pm_acc =
        evaluate_pm_cycles(&net, &x, &labels, &PmConfig::paper(sigma), 3, 5, Some(&x)).unwrap();

    let ours_loss = ideal - ours_acc;
    let dva_loss = ideal - dva_acc;
    let pm_loss = ideal - pm_acc;

    // the Table III claim, scaled to this toy problem: clearly better
    // than the one-crossbar DVA baseline, and competitive with the
    // 2.5×-crossbar PM baseline (PM's 10-cell unary averaging is very
    // strong on a tiny 2-class MLP — the full comparison is `table3`)
    assert!(ours_loss <= dva_loss + 0.05, "ours loss {ours_loss} vs DVA {dva_loss}");
    assert!(ours_loss <= pm_loss + 0.15, "ours loss {ours_loss} vs PM {pm_loss}");
    let base = CrossbarBudget::this_work();
    assert!(CrossbarBudget::dva().normalized_crossbars(&base) >= 2.0);
    assert!(CrossbarBudget::pm().normalized_crossbars(&base) >= 2.0);
}

#[test]
fn dva_plus_pm_composes() {
    let (net, x, labels, ideal) = trained_problem();
    let sigma = 0.8;
    let mut dva_net = net.clone();
    train_dva(
        &mut dva_net,
        &x,
        &labels,
        &DvaConfig { train: TrainConfig { epochs: 10, lr: 0.02, ..Default::default() }, sigma },
    )
    .unwrap();
    let pm_only =
        evaluate_pm_cycles(&net, &x, &labels, &PmConfig::paper(sigma), 3, 6, None).unwrap();
    let dva_pm =
        evaluate_pm_cycles(&dva_net, &x, &labels, &PmConfig::paper(sigma), 3, 6, None).unwrap();
    // DVA training should not hurt the PM deployment (paper: DVA+PM > PM)
    assert!(
        dva_pm >= pm_only - 0.08,
        "DVA+PM {dva_pm} much worse than PM alone {pm_only} (ideal {ideal})"
    );
}
