//! Smoke test of the paper's primary workload at miniature scale: a
//! width-reduced LeNet on synthetic digits, through the full
//! map → program → compensate → evaluate pipeline.

use rram_digital_offset::core::{
    evaluate_cycles, mean_core_gradients, CycleEvalConfig, MappedNetwork, Method, OffsetConfig,
    PwtConfig,
};
use rram_digital_offset::datasets::{generate_digits, DigitsConfig};
use rram_digital_offset::nn::{evaluate, fit, LeNetConfig, TrainConfig};
use rram_digital_offset::rram::{CellKind, DeviceLut, VariationModel};
use rram_digital_offset::tensor::rng::seeded_rng;

#[test]
fn scaled_lenet_recovers_under_variation() {
    let ds = generate_digits(&DigitsConfig { per_class: 30, ..Default::default() }).unwrap();
    let (train, test) = ds.split(2.0 / 3.0).unwrap();

    let mut net = LeNetConfig::scaled().build(&mut seeded_rng(1)).unwrap();
    fit(
        &mut net,
        train.images(),
        train.labels(),
        &TrainConfig { epochs: 6, lr: 0.08, weight_decay: 0.0, ..Default::default() },
    )
    .unwrap();
    let ideal = evaluate(&mut net, test.images(), test.labels(), 64).unwrap();
    assert!(ideal > 0.7, "LeNet failed to learn the digits: {ideal}");

    let sigma = 0.5;
    let cfg = OffsetConfig::paper(CellKind::Slc, sigma, 16).unwrap();
    let lut = DeviceLut::analytic(&VariationModel::per_weight(sigma), &cfg.codec).unwrap();
    let eval = CycleEvalConfig {
        cycles: 2,
        seed: 0,
        pwt: PwtConfig { epochs: 3, ..Default::default() },
        batch_size: 64,
        threads: 1,
        qint: false,
    };

    let mut plain = MappedNetwork::map(&net, Method::Plain, &cfg, &lut, None).unwrap();
    let plain_acc = evaluate_cycles(&mut plain, None, test.images(), test.labels(), &eval).unwrap();

    let grads = mean_core_gradients(&mut net, train.images(), train.labels(), 64).unwrap();
    let mut full = MappedNetwork::map(&net, Method::VawoStarPwt, &cfg, &lut, Some(&grads)).unwrap();
    let full_acc = evaluate_cycles(
        &mut full,
        Some((train.images(), train.labels())),
        test.images(),
        test.labels(),
        &eval,
    )
    .unwrap();

    assert!(
        plain_acc.mean < ideal - 0.3,
        "plain should collapse under sigma 0.5: {} vs ideal {ideal}",
        plain_acc.mean
    );
    assert!(
        full_acc.mean > plain_acc.mean + 0.2,
        "VAWO*+PWT ({}) should clearly beat plain ({})",
        full_acc.mean,
        plain_acc.mean
    );
    assert!(
        full_acc.mean > ideal - 0.25,
        "VAWO*+PWT ({}) should approach ideal ({ideal})",
        full_acc.mean
    );
}
