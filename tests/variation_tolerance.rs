//! Variation-sweep integration tests: the monotone degradation trends of
//! Fig. 5(c) on a small workload.

use rram_digital_offset::core::{
    evaluate_cycles, mean_core_gradients, CycleEvalConfig, MappedNetwork, Method, OffsetConfig,
    PwtConfig,
};
use rram_digital_offset::nn::{evaluate, fit, Linear, Relu, Sequential, TrainConfig};
use rram_digital_offset::rram::{CellKind, DeviceLut, VariationModel};
use rram_digital_offset::tensor::rng::{randn, seeded_rng};
use rram_digital_offset::tensor::Tensor;

fn trained_problem() -> (Sequential, Tensor, Vec<usize>, f32) {
    let mut rng = seeded_rng(31);
    let n = 320;
    let x = randn(&[n, 10], 0.0, 1.0, &mut rng);
    let labels: Vec<usize> = (0..n)
        .map(|i| {
            let s = x.data()[i * 10] + x.data()[i * 10 + 4];
            let t = x.data()[i * 10 + 1] - x.data()[i * 10 + 5];
            (usize::from(s > 0.0)) * 2 + usize::from(t > 0.0)
        })
        .collect();
    let mut net = Sequential::new();
    net.push(Linear::new(10, 24, &mut rng));
    net.push(Relu::new());
    net.push(Linear::new(24, 4, &mut rng));
    fit(&mut net, &x, &labels, &TrainConfig { epochs: 30, lr: 0.1, ..Default::default() }).unwrap();
    let ideal = evaluate(&mut net, &x, &labels, 64).unwrap();
    (net, x, labels, ideal)
}

fn run(
    net: &mut Sequential,
    method: Method,
    cell: CellKind,
    sigma: f64,
    x: &Tensor,
    labels: &[usize],
) -> f32 {
    let cfg = OffsetConfig::paper(cell, sigma, 16).unwrap();
    let lut = DeviceLut::analytic(&VariationModel::per_weight(sigma), &cfg.codec).unwrap();
    let grads = if method.uses_vawo() {
        Some(mean_core_gradients(net, x, labels, 64).unwrap())
    } else {
        None
    };
    let mut mapped = MappedNetwork::map(net, method, &cfg, &lut, grads.as_deref()).unwrap();
    let eval = CycleEvalConfig {
        cycles: 3,
        seed: 9,
        pwt: PwtConfig { epochs: 3, ..Default::default() },
        batch_size: 64,
        threads: 1,
        qint: false,
    };
    evaluate_cycles(&mut mapped, Some((x, labels)), x, labels, &eval).unwrap().mean
}

#[test]
fn plain_degrades_with_sigma() {
    let (mut net, x, labels, ideal) = trained_problem();
    assert!(ideal > 0.9);
    let lo = run(&mut net, Method::Plain, CellKind::Slc, 0.1, &x, &labels);
    let hi = run(&mut net, Method::Plain, CellKind::Slc, 0.8, &x, &labels);
    assert!(lo > hi + 0.1, "plain accuracy must fall sharply with sigma: {lo} vs {hi}");
}

#[test]
fn combined_method_tracks_sigma_gracefully() {
    // Fig. 5(c) shape: VAWO*+PWT degrades slowly and stays far above plain
    let (mut net, x, labels, ideal) = trained_problem();
    for (sigma, max_drop) in [(0.2f64, 0.15), (0.5, 0.3), (1.0, 0.55)] {
        let plain = run(&mut net, Method::Plain, CellKind::Mlc2, sigma, &x, &labels);
        let full = run(&mut net, Method::VawoStarPwt, CellKind::Mlc2, sigma, &x, &labels);
        assert!(full >= plain, "combined ({full}) below plain ({plain}) at sigma {sigma}");
        // the tolerable drop grows with sigma; a small MLP has little
        // redundancy, so the budget is looser than Fig. 5(c)'s ResNet
        assert!(
            full > ideal - max_drop,
            "combined collapsed at sigma {sigma}: {full} (ideal {ideal})"
        );
    }
}

#[test]
fn mlc_is_more_sensitive_than_slc_for_plain() {
    // §IV-A3: MLCs have "higher sensitivity to variations"
    let (mut net, x, labels, _) = trained_problem();
    let sigma = 0.5;
    // average a few cycles of each; MLC should not be better
    let slc = run(&mut net, Method::Plain, CellKind::Slc, sigma, &x, &labels);
    let mlc = run(&mut net, Method::Plain, CellKind::Mlc2, sigma, &x, &labels);
    assert!(
        mlc <= slc + 0.1,
        "2-bit MLC plain ({mlc}) should not beat SLC plain ({slc}) by a margin"
    );
}
