//! Cross-checks between the effective-weight fast path and the
//! cell-level bit-serial ADC path (DESIGN.md ablation 5), driven through
//! the quantization/mapping layers.

use rram_digital_offset::nn::quant::quantize_weights;
use rram_digital_offset::rram::{
    Adc, BitSerialEvaluator, CellKind, CellTechnology, Crossbar, CrossbarSpec, VariationModel,
    WeightCodec,
};
use rram_digital_offset::tensor::rng::{randn, seeded_rng};

/// Programs quantized weights into a cell-level crossbar and checks that
/// the bit-serial pipeline computes exactly the dot product implied by
/// the measured CRWs — i.e. the fast path and the detailed path agree on
/// the same devices.
#[test]
fn bit_serial_pipeline_matches_measured_crws() {
    let mut rng = seeded_rng(0);
    let w = randn(&[8, 64], 0.0, 0.2, &mut rng); // (out, in) network layer
    let q = quantize_weights(&w, 8).unwrap();
    let ctw = q.levels.transpose2().unwrap(); // fan_in × fan_out

    for (kind, sigma) in [(CellKind::Slc, 0.0), (CellKind::Slc, 0.5), (CellKind::Mlc2, 0.5)] {
        let codec = WeightCodec::paper(CellTechnology::paper(kind));
        let model = VariationModel::per_weight(sigma);
        let xbar =
            Crossbar::program(CrossbarSpec::default(), codec, &ctw, &model, &mut rng).unwrap();
        let crw = xbar.crw_matrix();

        let x: Vec<u32> = (0..64).map(|i| (i * 37 % 256) as u32).collect();
        for m in [16usize, 64] {
            let eval = BitSerialEvaluator::new(Adc::ideal(), 8, m);
            let y = eval.evaluate(&xbar, &x).unwrap();
            for (c, &yc) in y.iter().enumerate() {
                let direct: f64 =
                    (0..64).map(|r| x[r] as f64 * crw.at(&[r, c]).unwrap() as f64).sum();
                assert!(
                    (yc - direct).abs() <= 1e-5 * direct.abs().max(1.0),
                    "{kind:?} sigma {sigma} m {m}: {yc} vs {direct}"
                );
            }
        }
    }
}

/// With zero variation and an ideal ADC, the whole analog pipeline must
/// reproduce the exact integer arithmetic of the quantized layer.
#[test]
fn zero_noise_pipeline_is_integer_exact() {
    let mut rng = seeded_rng(1);
    let w = randn(&[4, 32], 0.0, 0.3, &mut rng);
    let q = quantize_weights(&w, 8).unwrap();
    let ctw = q.levels.transpose2().unwrap();
    let codec = WeightCodec::paper(CellTechnology::paper(CellKind::Mlc2));
    let xbar = Crossbar::program(
        CrossbarSpec::default(),
        codec,
        &ctw,
        &VariationModel::per_weight(0.0),
        &mut rng,
    )
    .unwrap();
    let x: Vec<u32> = (0..32).map(|i| (i * 11 % 256) as u32).collect();
    let eval = BitSerialEvaluator::new(Adc::ideal(), 8, 16);
    let y = eval.evaluate(&xbar, &x).unwrap();
    for (c, &yc) in y.iter().enumerate() {
        let exact: f64 = (0..32).map(|r| x[r] as f64 * ctw.at(&[r, c]).unwrap() as f64).sum();
        assert!((yc - exact).abs() < 1e-4, "column {c}: {yc} vs {exact}");
    }
}

/// An 8-bit ADC with a sensible full scale introduces only a small
/// relative error versus the ideal converter.
#[test]
fn finite_adc_error_is_bounded() {
    let mut rng = seeded_rng(2);
    let w = randn(&[4, 64], 0.0, 0.3, &mut rng);
    let q = quantize_weights(&w, 8).unwrap();
    let ctw = q.levels.transpose2().unwrap();
    let codec = WeightCodec::paper(CellTechnology::paper(CellKind::Slc));
    let xbar = Crossbar::program(
        CrossbarSpec::default(),
        codec,
        &ctw,
        &VariationModel::per_weight(0.3),
        &mut rng,
    )
    .unwrap();
    let x: Vec<u32> = (0..64).map(|i| (255 - i * 3) as u32).collect();
    let m = 16;
    let fs = m as f64 * (1.0 + codec.cell().floor());
    let ideal = BitSerialEvaluator::new(Adc::ideal(), 8, m);
    let coarse = BitSerialEvaluator::new(Adc::new(8, fs), 8, m);
    let yi = ideal.evaluate(&xbar, &x).unwrap();
    let yc = coarse.evaluate(&xbar, &x).unwrap();
    for (a, b) in yc.iter().zip(&yi) {
        assert!((a - b).abs() <= 0.03 * b.abs().max(1000.0), "{a} vs {b}");
    }
}
